// Package service is the serving layer of the repository: it turns the
// compile-once/serve-many shape of the supported low-bandwidth model into a
// long-lived, concurrent, observable system.
//
// The supported model splits every multiplication into free
// structure-dependent preprocessing (core.Prepare — expensive on the host)
// and a run-time value-carrying execution (Prepared.Multiply — the part
// whose round count the paper bounds). An inference-style serving stack has
// exactly this shape, so the layer consists of:
//
//   - a content-addressed plan cache (Cache): prepared plans keyed by the
//     core.Fingerprint of (Â, B̂, X̂, ring, algorithm, d), with bounded-size
//     LRU eviction and singleflight deduplication so N concurrent requests
//     for the same new structure cost one compilation;
//   - a Server with a bounded worker pool and admission control (queue
//     depth limit, per-request deadline, typed load shedding via
//     ErrOverloaded);
//   - an optional persistent tier (Config.Store, internal/planstore): on a
//     memory miss the fingerprint is looked up on disk before compiling,
//     so a restarted process serves previously-compiled structures without
//     recompiling (docs/PLANSTORE.md);
//   - an HTTP/JSON front end (NewHandler) speaking /v1/multiply,
//     /v1/prepare, /v1/classify, /healthz and /metrics, used by the
//     `lbmm serve` subcommand.
//
// Fingerprints are stable content addresses: core.Fingerprint hashes a
// canonical serialization of the structure, ring, normalized algorithm and
// resolved d, independent of construction order, process or machine — which
// is what makes both cache tiers (and any future shared store) coherent
// without coordination.
//
// Lock ordering: the Cache's mutex is the only lock in this package held
// across another component's calls, and compile functions run *outside* it
// (singleflight waiters block on a channel, not the lock). The plan store
// has its own internal mutex and never calls back into the service, so no
// lock cycle exists between the tiers.
//
// All service counters are published through an obsv.CounterSet (the PR-1
// observability layer); names are documented in docs/SERVICE.md.
package service

import (
	"container/list"
	"sync"

	"lbmm/internal/core"
	"lbmm/internal/obsv"
)

// Cache is a bounded, content-addressed store of prepared plans. It is safe
// for concurrent use. Lookups of a cached fingerprint are O(1); misses run
// the caller-supplied compile function outside the cache lock, and
// concurrent misses on the same fingerprint collapse into a single
// compilation whose result (or error) every waiter receives.
type Cache struct {
	capacity int
	maxBytes int64
	metrics  *obsv.CounterSet

	mu       sync.Mutex
	entries  map[string]*list.Element // fingerprint → lru element
	lru      *list.List               // front = most recently used
	bytes    int64                    // sum of cached entries' compiled sizes
	inflight map[string]*flight
}

type cacheEntry struct {
	key  string
	prep *core.Prepared
	cost int64
}

// flight is one in-progress compilation; waiters block on done.
type flight struct {
	done chan struct{}
	prep *core.Prepared
	err  error
}

// Counter names published by the cache.
const (
	MetricCacheHits      = "cache/hits"
	MetricCacheMisses    = "cache/misses"
	MetricCacheJoins     = "cache/joins" // waited on another request's compile
	MetricCacheEvictions = "cache/evictions"
	MetricCacheSize      = "cache/size"     // gauge
	MetricCacheBytes     = "cache/bytes"    // gauge: total compiled size cached
	MetricCacheInflight  = "cache/inflight" // gauge
)

// NewCache returns a cache holding at most capacity prepared plans
// (capacity < 1 is treated as 1). Metrics may be nil to disable counting.
func NewCache(capacity int, metrics *obsv.CounterSet) *Cache {
	return NewCacheBytes(capacity, 0, metrics)
}

// NewCacheBytes returns a cache bounded by an entry count and, when
// maxBytes > 0, by the total compiled size of the cached plans
// (core.Prepared.CompiledBytes) — the LRU cost model that matches what a
// cached entry actually pins in memory. A single entry larger than maxBytes
// is still cached (an empty cache serves nothing); eviction brings the
// total back under budget as soon as a second entry arrives.
func NewCacheBytes(capacity int, maxBytes int64, metrics *obsv.CounterSet) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if metrics == nil {
		metrics = obsv.NewCounterSet()
	}
	return &Cache{
		capacity: capacity,
		maxBytes: maxBytes,
		metrics:  metrics,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
	}
}

// Bytes returns the total compiled size of the cached plans.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Keys returns the cached fingerprints from most to least recently used
// (test and introspection helper).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.lru.Len())
	for e := c.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*cacheEntry).key)
	}
	return out
}

// Get returns the prepared plan for the fingerprint, compiling it with
// compile on a miss. The second result reports whether the plan came from
// the cache (a request that joined another request's in-flight compilation
// counts as a miss: no ready plan existed when it arrived). Compile errors
// are returned to every waiter and nothing is cached.
func (c *Cache) Get(fingerprint string, compile func() (*core.Prepared, error)) (*core.Prepared, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[fingerprint]; ok {
		c.lru.MoveToFront(e)
		c.metrics.Add(MetricCacheHits, 1)
		prep := e.Value.(*cacheEntry).prep
		c.mu.Unlock()
		return prep, true, nil
	}
	if f, ok := c.inflight[fingerprint]; ok {
		c.metrics.Add(MetricCacheJoins, 1)
		c.mu.Unlock()
		<-f.done
		return f.prep, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fingerprint] = f
	c.metrics.Add(MetricCacheMisses, 1)
	c.metrics.Add(MetricCacheInflight, 1)
	c.mu.Unlock()

	f.prep, f.err = compile()

	c.mu.Lock()
	delete(c.inflight, fingerprint)
	c.metrics.Add(MetricCacheInflight, -1)
	if f.err == nil {
		c.insertLocked(fingerprint, f.prep)
	}
	c.mu.Unlock()
	close(f.done)
	return f.prep, false, f.err
}

// Contains reports whether the fingerprint is cached, without touching the
// LRU order.
func (c *Cache) Contains(fingerprint string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[fingerprint]
	return ok
}

func (c *Cache) insertLocked(key string, prep *core.Prepared) {
	cost := prep.CompiledBytes()
	if e, ok := c.entries[key]; ok {
		// A racing compile of the same key finished first; keep the newer
		// plan and refresh recency.
		ent := e.Value.(*cacheEntry)
		c.bytes += cost - ent.cost
		ent.prep = prep
		ent.cost = cost
		c.lru.MoveToFront(e)
		c.metrics.Set(MetricCacheBytes, c.bytes)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, prep: prep, cost: cost})
	c.bytes += cost
	for c.lru.Len() > c.capacity || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1) {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.entries, ent.key)
		c.bytes -= ent.cost
		c.metrics.Add(MetricCacheEvictions, 1)
	}
	c.metrics.Set(MetricCacheSize, int64(c.lru.Len()))
	c.metrics.Set(MetricCacheBytes, c.bytes)
}
