package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lbmm/internal/batch"
	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
)

// batchLane is one request parked in the coalescer: its values, what it
// asked for, and how its outcome goes back. A synchronous caller
// (multiplyCoalesced) waits on done (buffered so the batch runner never
// blocks on a caller that already gave up); a streamed lane carries a
// deliver callback instead — no goroutine parks for it, the batch runner
// invokes deliver with the finished response.
type batchLane struct {
	prep     *core.Prepared
	a, b     *matrix.Sparse
	trace    bool
	enqueued time.Time
	done     chan laneOut
	fp       string
	hit      bool
	deliver  func(*MultiplyResponse, error)
}

// laneOut is one lane's share of a batch outcome. rep and profile are
// shared across the batch's lanes (the batch really did execute once);
// they are read-only after fan-out.
type laneOut struct {
	x       *matrix.Sparse
	rep     *core.Report
	profile *obsv.Export
	err     error
}

// multiplyCoalesced is Multiply's batched tail: park the request in the
// coalescer keyed by its plan fingerprint and wait for the batch outcome.
// The caller's worker slot is released while parked — the launched batch
// takes one slot for the whole group in runBatch, so k coalesced lanes
// cost one worker, not k.
func (s *Server) multiplyCoalesced(ctx context.Context, req *MultiplyRequest, prep *core.Prepared, fp string, hit bool, release func()) (*MultiplyResponse, error) {
	lane := &batchLane{
		prep:     prep,
		a:        req.A,
		b:        req.B,
		trace:    req.Trace,
		enqueued: time.Now(),
		done:     make(chan laneOut, 1),
	}
	err := s.coal.Submit(fp, lane)
	release()
	if err != nil {
		// Only Close makes Submit fail: the server is draining, which to the
		// caller is indistinguishable from load shedding.
		s.metrics.Add(MetricShed, 1)
		return nil, ErrOverloaded
	}
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	select {
	case out := <-lane.done:
		if out.err != nil {
			s.metrics.Add(MetricErrors, 1)
			return nil, out.err
		}
		resp := &MultiplyResponse{X: out.x, Report: out.rep, Fingerprint: fp, CacheHit: hit}
		if req.Trace {
			resp.Profile = out.profile
		}
		s.metrics.Add(MetricServed, 1)
		return resp, nil
	case <-ctx.Done():
		// The batch still runs and fans out to the buffered channel; this
		// caller just stops waiting.
		if errors.Is(ctx.Err(), context.Canceled) {
			s.metrics.Add(MetricCanceled, 1)
		} else {
			s.metrics.Add(MetricDeadlineExceeded, 1)
		}
		return nil, ctx.Err()
	}
}

// runBatch executes one launched group: take a single worker slot, run the
// lanes as one batched multiply under the fault policy, fan the outcome to
// every lane. It is the coalescer's run callback and always runs on its
// own goroutine.
func (s *Server) runBatch(fp string, lanes []*batchLane, why batch.Reason) {
	now := time.Now()
	for _, ln := range lanes {
		s.metrics.Add(MetricBatchWaitNs, now.Sub(ln.enqueued).Nanoseconds())
	}
	s.metrics.Add(MetricBatchLaunch+string(why), 1)
	if s.ctrl != nil {
		s.ctrl.Observe(fp, len(lanes), why)
	}
	s.workers <- struct{}{}
	s.metrics.Set(MetricActiveWorkers, s.active.Add(1))
	defer s.release()
	s.batchHist.Observe(int64(len(lanes)))
	s.metrics.Set(MetricBatchLanes, s.laneCount.Add(int64(len(lanes))))
	defer func() {
		s.metrics.Set(MetricBatchLanes, s.laneCount.Add(-int64(len(lanes))))
	}()

	trace := false
	as := make([]*matrix.Sparse, len(lanes))
	bs := make([]*matrix.Sparse, len(lanes))
	for i, ln := range lanes {
		as[i], bs[i] = ln.a, ln.b
		trace = trace || ln.trace
	}
	// Lanes coalesced on one fingerprint share the structure, so any lane's
	// prepared plan serves the whole group.
	outs, rep, err := s.executeBatch(lanes[0].prep, as, bs, trace)
	if err != nil {
		for _, ln := range lanes {
			if ln.deliver != nil {
				s.metrics.Add(MetricErrors, 1)
				ln.deliver(nil, err)
				continue
			}
			ln.done <- laneOut{err: err}
		}
		return
	}
	var exp *obsv.Export
	if rep.Profile != nil {
		exp = rep.Profile.Export()
	}
	for i, ln := range lanes {
		out := laneOut{x: outs[i], rep: rep}
		if ln.trace {
			out.profile = exp
		}
		if ln.deliver != nil {
			resp := &MultiplyResponse{X: out.x, Report: out.rep, Fingerprint: ln.fp, CacheHit: ln.hit}
			if ln.trace {
				resp.Profile = out.profile
			}
			s.metrics.Add(MetricServed, 1)
			ln.deliver(resp, nil)
			continue
		}
		ln.done <- out
	}
}

// BatchLane is one value set of an explicit batched multiply.
type BatchLane struct {
	A, B *matrix.Sparse
}

// MultiplyBatchRequest is an explicit batched multiplication: k value sets
// over one shared sparsity structure, executed as a single batched run
// (no coalescing delay — the caller already assembled the batch).
type MultiplyBatchRequest struct {
	Lanes []BatchLane
	Xhat  *matrix.Support
	// Options select the plan as in core.Prepare.
	Options core.Options
	// Trace records the batch's execution profile into the response.
	Trace bool
}

// MultiplyBatchResponse carries the per-lane products and the shared batch
// report (Report.Lanes = k; Stats are per-batch, not per-lane).
type MultiplyBatchResponse struct {
	X           []*matrix.Sparse
	Report      *core.Report
	Fingerprint string
	CacheHit    bool
	Profile     *obsv.Export
}

// MultiplyBatch serves an explicit batch: every lane must share lane 0's
// sparsity structure (same plan fingerprint); the group is admitted as one
// request, holds one worker slot, and goes through the same fault policy
// as coalesced batches.
func (s *Server) MultiplyBatch(ctx context.Context, req *MultiplyBatchRequest) (*MultiplyBatchResponse, error) {
	if len(req.Lanes) == 0 || req.Xhat == nil {
		return nil, fmt.Errorf("%w: batch multiply needs lanes and Xhat", ErrInvalid)
	}
	opts := req.Options
	opts.Engine = ""
	var fp0 string
	for l, lane := range req.Lanes {
		if lane.A == nil || lane.B == nil {
			return nil, fmt.Errorf("%w: lane %d: missing A or B", ErrInvalid, l)
		}
		if n := lane.A.Support().N; n != lane.B.Support().N || n != req.Xhat.N {
			return nil, fmt.Errorf("%w: lane %d: dimension mismatch %d/%d/%d",
				ErrInvalid, l, n, lane.B.Support().N, req.Xhat.N)
		}
		fp, err := core.Fingerprint(lane.A.Support(), lane.B.Support(), req.Xhat, opts)
		if err != nil {
			return nil, fmt.Errorf("%w: lane %d: %v", ErrInvalid, l, err)
		}
		if l == 0 {
			fp0 = fp
		} else if fp != fp0 {
			return nil, fmt.Errorf("%w: lane %d: structure differs from lane 0 (batched lanes must share one plan)",
				ErrInvalid, l)
		}
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	prep, fp, hit, err := s.prepared(req.Lanes[0].A.Support(), req.Lanes[0].B.Support(), req.Xhat, req.Options)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	as := make([]*matrix.Sparse, len(req.Lanes))
	bs := make([]*matrix.Sparse, len(req.Lanes))
	for i, lane := range req.Lanes {
		as[i], bs[i] = lane.A, lane.B
	}
	s.batchHist.Observe(int64(len(req.Lanes)))
	outs, rep, err := s.executeBatch(prep, as, bs, req.Trace)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	resp := &MultiplyBatchResponse{X: outs, Report: rep, Fingerprint: fp, CacheHit: hit}
	if req.Trace && rep.Profile != nil {
		resp.Profile = rep.Profile.Export()
	}
	s.metrics.Add(MetricServed, 1)
	return resp, nil
}
