package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"

	"lbmm/internal/service"
)

// ErrSessionClosed is returned by Submit after the session ended (Close was
// called or the connection dropped).
var ErrSessionClosed = errors.New("stream: session closed")

// Call is one submitted lane's handle: Wait blocks until its result or
// error frame arrives.
type Call struct {
	// ID is the correlation key the lane was submitted under.
	ID     string
	ticket atomic.Uint64
	done   chan Frame
}

// Ticket reports the server-assigned ticket once the ticket frame arrived
// (0 before).
func (c *Call) Ticket() uint64 { return c.ticket.Load() }

// Wait blocks for the lane's outcome frame: TypeResult on success, or
// TypeError carrying the server's status code and message.
func (c *Call) Wait(ctx context.Context) (Frame, error) {
	select {
	case f := <-c.done:
		return f, nil
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	}
}

// Client is one lbmm.stream.v1 session from the client side: Submit
// pipelines lanes over the single connection without waiting for earlier
// outcomes; a background reader fans ticket/result/error frames back to the
// per-lane Call handles. Safe for concurrent use.
type Client struct {
	maxInflight int

	pw   *io.PipeWriter
	body io.ReadCloser

	mu      sync.Mutex
	enc     *json.Encoder
	pending map[string]*Call
	closed  bool
	// lastXhat is the support most recently shipped explicitly; a submit
	// whose xhat matches it is sent as a same_xhat frame instead — the
	// repeated-products regime pays for its (identical) support once.
	lastXhat []service.WirePos

	readerDone chan struct{}
}

// Dial opens a streaming session against a serving base URL (for example
// http://127.0.0.1:8080) and completes the hello exchange. The context
// governs the whole session: cancel it to tear the connection down.
func Dial(ctx context.Context, baseURL string, hc *http.Client) (*Client, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/stream/v1", pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, fmt.Errorf("stream: dial: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		pw.Close()
		resp.Body.Close()
		return nil, fmt.Errorf("stream: dial: server answered %s", resp.Status)
	}
	c := &Client{
		pw:         pw,
		body:       resp.Body,
		enc:        json.NewEncoder(pw),
		pending:    map[string]*Call{},
		readerDone: make(chan struct{}),
	}
	if err := c.enc.Encode(Frame{Type: TypeHello, Proto: Proto}); err != nil {
		c.teardown()
		return nil, fmt.Errorf("stream: hello: %w", err)
	}
	dec := json.NewDecoder(resp.Body)
	var hello Frame
	if err := dec.Decode(&hello); err != nil {
		c.teardown()
		return nil, fmt.Errorf("stream: hello: %w", err)
	}
	if hello.Type == TypeError {
		c.teardown()
		return nil, fmt.Errorf("stream: hello rejected: %s", hello.Error)
	}
	if hello.Type != TypeHello || hello.Proto != Proto {
		c.teardown()
		return nil, fmt.Errorf("stream: unexpected hello %q/%q", hello.Type, hello.Proto)
	}
	c.maxInflight = hello.MaxInflight
	go c.readLoop(dec)
	return c, nil
}

// MaxInflight is the per-session lane cap the server advertised in its
// hello — submits beyond it come back as code-429 error frames.
func (c *Client) MaxInflight() int { return c.maxInflight }

// Submit pipelines one lane under the given correlation id (unique among
// lanes currently in flight) and returns its handle without waiting for the
// outcome.
func (c *Client) Submit(id string, wm *service.WireMultiply) (*Call, error) {
	call := &Call{ID: id, done: make(chan Frame, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if _, dup := c.pending[id]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("stream: id %q already in flight", id)
	}
	c.pending[id] = call
	f := Frame{Type: TypeSubmit, ID: id, Submit: wm}
	if len(wm.Xhat) > 0 && slices.Equal(wm.Xhat, c.lastXhat) {
		// Ship a copy with the support elided rather than mutating the
		// caller's request.
		elided := *wm
		elided.Xhat = nil
		f.Submit, f.SameXhat = &elided, true
	} else if len(wm.Xhat) > 0 {
		c.lastXhat = wm.Xhat
	}
	err := c.enc.Encode(f)
	if err != nil {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("stream: submit: %w", err)
	}
	return call, nil
}

// readLoop fans incoming frames to their Call handles until the server
// closes its side; it then fails every still-pending lane.
func (c *Client) readLoop(dec *json.Decoder) {
	defer close(c.readerDone)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			c.failPending(err)
			return
		}
		switch f.Type {
		case TypeTicket:
			c.mu.Lock()
			if call := c.pending[f.ID]; call != nil {
				call.ticket.Store(f.Ticket)
			}
			c.mu.Unlock()
		case TypeResult, TypeError:
			c.mu.Lock()
			call := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.mu.Unlock()
			if call != nil {
				call.done <- f
			}
		}
	}
}

// failPending completes every in-flight Call with a connection-loss error
// frame so no waiter hangs.
func (c *Client) failPending(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, call := range c.pending {
		delete(c.pending, id)
		call.done <- Frame{Type: TypeError, ID: id, Code: http.StatusBadGateway,
			Error: fmt.Sprintf("stream: connection lost: %v", err)}
	}
}

// Close ends the session: the submit side is closed (the server flushes
// every accepted lane's outcome before ending its side) and the reader is
// drained. Outstanding Calls complete normally before Close returns.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.pw.Close()
	<-c.readerDone
	return c.body.Close()
}

func (c *Client) teardown() {
	c.pw.Close()
	c.body.Close()
}
