package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"lbmm/internal/control"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/workload"
)

// newStreamServer stands up a real HTTP server (httptest; full duplex needs
// a live connection, not a recorder) with the streaming endpoint and the
// scalar API mounted together, the way serve -stream runs them.
func newStreamServer(t *testing.T, svcCfg service.Config, strCfg Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if svcCfg.Metrics == nil {
		svcCfg.Metrics = obsv.NewCounterSet()
	}
	if strCfg.Metrics == nil {
		strCfg.Metrics = svcCfg.Metrics
	}
	srv := service.NewServer(svcCfg)
	mux := http.NewServeMux()
	mux.Handle("/v1/", service.NewHandler(srv))
	mux.Handle("/stream/", NewHandler(srv, strCfg))
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func supportPositions(s *matrix.Support) []service.WirePos {
	var out []service.WirePos
	for i, row := range s.Rows {
		for _, j := range row {
			out = append(out, service.WirePos{i, int(j)})
		}
	}
	return out
}

// TestStreamPipeline256 is the acceptance scenario: one connection
// pipelines 256 lanes of one structure through the adaptive controller.
// Every product must be correct, the controller must have batched (fewer
// launches than lanes, with the first launch immediate — the key was cold),
// and the goroutine high-water mark must stay far below the lane count.
func TestStreamPipeline256(t *testing.T) {
	base := runtime.NumGoroutine()
	ms := obsv.NewCounterSet()
	// A generous window keeps the hot/cold call about pipelining rather
	// than wall-clock speed: under -race the client encodes submits an
	// order of magnitude slower, and the controller must still see the
	// stream as hot.
	srv, ts := newStreamServer(t,
		service.Config{BatchAdaptive: true, BatchSize: 16, BatchDelay: 50 * time.Millisecond, Metrics: ms},
		Config{Metrics: ms})

	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	xpos := supportPositions(inst.Xhat)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.MaxInflight() <= 0 {
		t.Fatalf("hello advertised max_inflight %d, want > 0", c.MaxInflight())
	}

	const lanes = 256
	as := make([]*matrix.Sparse, lanes)
	bs := make([]*matrix.Sparse, lanes)
	calls := make([]*Call, lanes)
	for i := 0; i < lanes; i++ {
		as[i] = matrix.Random(inst.Ahat, r, int64(2*i+1))
		bs[i] = matrix.Random(inst.Bhat, r, int64(2*i+2))
		calls[i], err = c.Submit(fmt.Sprintf("lane-%d", i), &service.WireMultiply{
			N: inst.N, Ring: "counting",
			A: service.WireEntries(as[i]), B: service.WireEntries(bs[i]), Xhat: xpos,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	seen := map[uint64]bool{}
	for i, call := range calls {
		f, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		if f.Type != TypeResult {
			t.Fatalf("lane %d: %s frame: %s", i, f.Type, f.Error)
		}
		if f.Ticket == 0 || seen[f.Ticket] {
			t.Fatalf("lane %d: ticket %d missing or duplicated", i, f.Ticket)
		}
		seen[f.Ticket] = true
		got := matrix.NewSparse(inst.N, r)
		for _, e := range f.X {
			got.Set(int(e[0]), int(e[1]), e[2])
		}
		if want := matrix.MulReference(as[i], bs[i], inst.Xhat); !matrix.Equal(got, want) {
			t.Fatalf("lane %d: wrong product", i)
		}
	}

	m := srv.Metrics()
	if m[MetricResults] != lanes {
		t.Errorf("stream/results = %d, want %d", m[MetricResults], lanes)
	}
	launches := m["batch/size/count"]
	if launches == 0 || launches >= lanes {
		t.Errorf("batch launches = %d for %d lanes: the hot fingerprint never coalesced", launches, lanes)
	}
	if m[control.MetricImmediate] < 1 {
		t.Errorf("control/immediate = %d: the cold first arrival must launch immediately", m[control.MetricImmediate])
	}
	if m[control.MetricBatched] == 0 {
		t.Errorf("control/batched = 0: the hot fingerprint never got a window")
	}
	if hwm := m[MetricGoroutineHWM]; hwm > int64(base)+64 {
		t.Errorf("goroutine high-water mark %d (baseline %d): streamed lanes must not park goroutines", hwm, base)
	}
}

// TestStreamColdImmediate pins the controller's cold path end to end: a
// single streamed lane launches immediately — no coalesce delay and an
// immediate launch reason on the wire-visible metrics.
func TestStreamColdImmediate(t *testing.T) {
	ms := obsv.NewCounterSet()
	srv, ts := newStreamServer(t,
		service.Config{BatchAdaptive: true, Metrics: ms},
		Config{Metrics: ms})

	r := ring.Counting{}
	inst := workload.Blocks(8, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	call, err := c.Submit("only", &service.WireMultiply{
		N: inst.N, Ring: "counting",
		A: service.WireEntries(a), B: service.WireEntries(b), Xhat: supportPositions(inst.Xhat),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := call.Wait(ctx)
	if err != nil || f.Type != TypeResult {
		t.Fatalf("outcome %v / %+v", err, f)
	}
	m := srv.Metrics()
	if m[control.MetricImmediate] != 1 {
		t.Errorf("control/immediate = %d, want 1", m[control.MetricImmediate])
	}
	if m["batch/launch_immediate"] != 1 {
		t.Errorf("batch/launch_immediate = %d, want 1", m["batch/launch_immediate"])
	}
}

// TestStreamBackpressure pins the session inflight cap: with lanes parked
// behind a long static batch window, submits beyond the cap come back as
// code-429 error frames, and every accepted lane still completes.
func TestStreamBackpressure(t *testing.T) {
	ms := obsv.NewCounterSet()
	srv, ts := newStreamServer(t,
		service.Config{BatchSize: 64, BatchDelay: 300 * time.Millisecond, Metrics: ms},
		Config{MaxInflight: 4, Metrics: ms})

	r := ring.Counting{}
	inst := workload.Blocks(8, 2)
	xpos := supportPositions(inst.Xhat)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total = 10
	calls := make([]*Call, total)
	for i := 0; i < total; i++ {
		a := matrix.Random(inst.Ahat, r, int64(2*i+1))
		b := matrix.Random(inst.Bhat, r, int64(2*i+2))
		calls[i], err = c.Submit(fmt.Sprintf("lane-%d", i), &service.WireMultiply{
			N: inst.N, Ring: "counting",
			A: service.WireEntries(a), B: service.WireEntries(b), Xhat: xpos,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	results, rejected := 0, 0
	for i, call := range calls {
		f, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		switch {
		case f.Type == TypeResult:
			results++
		case f.Type == TypeError && f.Code == http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("lane %d: unexpected outcome %+v", i, f)
		}
	}
	if results < 4 {
		t.Errorf("results = %d, want at least the %d accepted lanes", results, 4)
	}
	if rejected == 0 {
		t.Error("no submit was rejected: the inflight cap never engaged")
	}
	if got := srv.Metrics()[MetricBackpressure]; got != int64(rejected) {
		t.Errorf("stream/backpressure = %d, client saw %d rejections", got, rejected)
	}
}

// TestStreamStickySupport pins the repeated-products shortcut: lanes whose
// xhat matches the session's last support are shipped as same_xhat frames
// (the client elides the support transparently), the server substitutes the
// sticky copy, and every product is still correct. A same_xhat submit
// before any support shipped is a 400 error frame.
func TestStreamStickySupport(t *testing.T) {
	ms := obsv.NewCounterSet()
	srv, ts := newStreamServer(t, service.Config{Metrics: ms}, Config{Metrics: ms})
	r := ring.Counting{}
	inst := workload.Blocks(8, 2)
	xpos := supportPositions(inst.Xhat)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const lanes = 8
	as := make([]*matrix.Sparse, lanes)
	bs := make([]*matrix.Sparse, lanes)
	calls := make([]*Call, lanes)
	for i := 0; i < lanes; i++ {
		as[i] = matrix.Random(inst.Ahat, r, int64(2*i+1))
		bs[i] = matrix.Random(inst.Bhat, r, int64(2*i+2))
		wm := &service.WireMultiply{
			N: inst.N, Ring: "counting",
			A: service.WireEntries(as[i]), B: service.WireEntries(bs[i]), Xhat: xpos,
		}
		if calls[i], err = c.Submit(fmt.Sprintf("lane-%d", i), wm); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if wm.Xhat == nil {
			t.Fatalf("submit %d mutated the caller's request", i)
		}
	}
	for i, call := range calls {
		f, err := call.Wait(ctx)
		if err != nil || f.Type != TypeResult {
			t.Fatalf("lane %d: %v / %+v", i, err, f)
		}
		got := matrix.NewSparse(inst.N, r)
		for _, e := range f.X {
			got.Set(int(e[0]), int(e[1]), e[2])
		}
		if want := matrix.MulReference(as[i], bs[i], inst.Xhat); !matrix.Equal(got, want) {
			t.Fatalf("lane %d: wrong product under sticky support", i)
		}
	}
	if got := srv.Metrics()[MetricXhatReuse]; got != lanes-1 {
		t.Errorf("stream/xhat_reuse = %d, want %d (every lane after the first)", got, lanes-1)
	}

	// Raw session: same_xhat with nothing sticky yet must be a 400 frame.
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/stream/v1", pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		io.WriteString(pw, `{"type":"hello","proto":"lbmm.stream.v1"}`+"\n")
		io.WriteString(pw, `{"type":"submit","id":"orphan","same_xhat":true,"submit":{"n":4,"a":[],"b":[]}}`+"\n")
		pw.Close()
	}()
	dec := json.NewDecoder(resp.Body)
	var hello Frame
	if err := dec.Decode(&hello); err != nil || hello.Type != TypeHello {
		t.Fatalf("hello: %v / %+v", err, hello)
	}
	sawErr := false
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			break
		}
		if f.Type == TypeError && f.ID == "orphan" && f.Code == http.StatusBadRequest {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("orphan same_xhat submit was not answered with a 400 error frame")
	}
}

// TestStreamStickySupportSurvivesBackpressure pins the sticky support
// across the documented backpressure-retry path: a submit that ships a NEW
// explicit xhat and is 429-rejected must still advance the server's sticky
// copy — the client committed its own the moment the frame shipped — so the
// retry, elided as same_xhat, computes against the new support rather than
// silently reusing the stale one.
func TestStreamStickySupportSurvivesBackpressure(t *testing.T) {
	ms := obsv.NewCounterSet()
	_, ts := newStreamServer(t,
		// A long static window parks the first lane so the second submit
		// deterministically trips the inflight cap.
		service.Config{BatchSize: 64, BatchDelay: 500 * time.Millisecond, Metrics: ms},
		Config{MaxInflight: 1, Metrics: ms})

	r := ring.Counting{}
	inst := workload.Blocks(8, 2)
	full := supportPositions(inst.Xhat)
	narrowPos := full[:len(full)/2]
	narrow := matrix.NewSupport(inst.N, narrowPos)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a0 := matrix.Random(inst.Ahat, r, 1)
	b0 := matrix.Random(inst.Bhat, r, 2)
	first, err := c.Submit("first", &service.WireMultiply{
		N: inst.N, Ring: "counting",
		A: service.WireEntries(a0), B: service.WireEntries(b0), Xhat: full,
	})
	if err != nil {
		t.Fatal(err)
	}
	a1 := matrix.Random(inst.Ahat, r, 3)
	b1 := matrix.Random(inst.Bhat, r, 4)
	wm := &service.WireMultiply{
		N: inst.N, Ring: "counting",
		A: service.WireEntries(a1), B: service.WireEntries(b1), Xhat: narrowPos,
	}
	rejected, err := c.Submit("rejected", wm)
	if err != nil {
		t.Fatal(err)
	}
	if f, err := rejected.Wait(ctx); err != nil || f.Type != TypeError || f.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit outcome %v / %+v, want a 429 error frame", err, f)
	}
	if f, err := first.Wait(ctx); err != nil || f.Type != TypeResult {
		t.Fatalf("first lane: %v / %+v", err, f)
	}

	// Retry the identical request: the client elides the support as
	// same_xhat because it committed lastXhat when the rejected frame
	// shipped — the server's sticky copy must have advanced in lockstep.
	retry, err := c.Submit("retry", wm)
	if err != nil {
		t.Fatal(err)
	}
	f, err := retry.Wait(ctx)
	if err != nil || f.Type != TypeResult {
		t.Fatalf("retried lane: %v / %+v", err, f)
	}
	got := matrix.NewSparse(inst.N, r)
	for _, e := range f.X {
		got.Set(int(e[0]), int(e[1]), e[2])
	}
	want := matrix.MulReference(a1, b1, narrow)
	if stale := matrix.MulReference(a1, b1, inst.Xhat); matrix.Equal(want, stale) {
		t.Fatal("degenerate instance: narrow and full supports give the same product")
	}
	if !matrix.Equal(got, want) {
		t.Fatal("retried same_xhat lane computed against the stale support")
	}
	if reuse := ms.Get(MetricXhatReuse); reuse != 1 {
		t.Errorf("stream/xhat_reuse = %d, want 1 (only the retry elides)", reuse)
	}
}

// TestStreamHelloTimeout pins the silent-peer reap: a client that connects
// and never sends its hello is answered and torn down by HelloTimeout
// instead of pinning the handler and writer goroutines on an
// unauthenticated endpoint forever.
func TestStreamHelloTimeout(t *testing.T) {
	_, ts := newStreamServer(t, service.Config{}, Config{HelloTimeout: 100 * time.Millisecond})
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/stream/v1", pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	defer pw.Close() // never writes a hello
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.ReadAll(resp.Body)
	}()
	select {
	case <-done:
		// The session ended on its own: the silent peer was reaped.
	case <-time.After(5 * time.Second):
		t.Fatal("session with a silent peer was not reaped by HelloTimeout")
	}
}

// TestStreamHelloRequired pins the handshake: a wrong protocol version is
// answered with an error frame and the session ends.
func TestStreamHelloRequired(t *testing.T) {
	_, ts := newStreamServer(t, service.Config{}, Config{})
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/stream/v1", pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		io.WriteString(pw, `{"type":"hello","proto":"lbmm.stream.v0"}`+"\n")
		pw.Close()
	}()
	var f Frame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeError || !strings.Contains(f.Error, "lbmm.stream.v1") {
		t.Fatalf("frame %+v, want a protocol error naming the supported version", f)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatalf("draining session tail: %v", err)
	}
}

// TestStreamBadSubmit pins the per-lane error path: a submit whose payload
// is invalid gets a ticket (it was accepted into the session) and then an
// error frame with code 400, while the session keeps serving later lanes.
func TestStreamBadSubmit(t *testing.T) {
	_, ts := newStreamServer(t, service.Config{}, Config{})
	r := ring.Counting{}
	inst := workload.Blocks(8, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad, err := c.Submit("bad", &service.WireMultiply{
		N: 4, A: []service.WireEntry{{9, 0, 1}}, // index out of range
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := bad.Wait(ctx)
	if err != nil || f.Type != TypeError || f.Code != http.StatusBadRequest {
		t.Fatalf("bad lane outcome %v / %+v, want a 400 error frame", err, f)
	}
	if f.Ticket == 0 {
		t.Error("bad lane got no ticket: accepted submits must be ticketed even when they fail")
	}

	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	good, err := c.Submit("good", &service.WireMultiply{
		N: inst.N, Ring: "counting",
		A: service.WireEntries(a), B: service.WireEntries(b), Xhat: supportPositions(inst.Xhat),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f, err := good.Wait(ctx); err != nil || f.Type != TypeResult {
		t.Fatalf("good lane after bad one: %v / %+v", err, f)
	}
}
