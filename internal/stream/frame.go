// Package stream is the session-oriented streaming transport of the serving
// layer: one long-lived connection carries many multiplies. A client opens a
// session (HTTP chunked NDJSON, POST /stream/v1, full duplex), sends submit
// frames, and gets a ticket back immediately per submit; result and error
// frames arrive asynchronously as batches launch and finish. One connection
// therefore pipelines hundreds of lanes against the coalescer — the
// repeated-products workloads the low-bandwidth model targets — without
// parking a goroutine or a socket per request the way scalar /v1/multiply
// does.
//
// The protocol is versioned as lbmm.stream.v1: a session starts with a
// hello exchange pinning the version, and every subsequent frame is one
// JSON object per line. Submit payloads reuse the exact schema of POST
// /v1/multiply (service.WireMultiply), so a scalar client upgrades by
// wrapping its request body in a frame, nothing else.
package stream

import "lbmm/internal/service"

// Proto is the protocol version pinned by the hello exchange.
const Proto = "lbmm.stream.v1"

// Frame types. Client→server: hello, submit. Server→client: hello, ticket,
// result, error.
const (
	TypeHello  = "hello"
	TypeSubmit = "submit"
	TypeTicket = "ticket"
	TypeResult = "result"
	TypeError  = "error"
)

// Frame is one NDJSON line of a lbmm.stream.v1 session — a tagged union
// over the frame types (unused fields are omitted on the wire).
//
//	client  {"type":"hello","proto":"lbmm.stream.v1"}
//	server  {"type":"hello","proto":"lbmm.stream.v1","max_inflight":512}
//	client  {"type":"submit","id":"lane-0","submit":{...same body as /v1/multiply...}}
//	server  {"type":"ticket","id":"lane-0","ticket":1}
//	server  {"type":"result","id":"lane-0","ticket":1,"x":[[i,j,v],...],"report":{...}}
//	server  {"type":"error","id":"lane-0","ticket":1,"code":503,"error":"..."}
//
// id is the client's correlation key, echoed verbatim on the ticket and the
// outcome; ticket is the server-assigned sequence number recording that the
// lane was accepted into the session. An error frame with code 429 is
// session backpressure: the submit exceeded the advertised max_inflight and
// was not accepted (no ticket is issued).
//
// same_xhat is the repeated-products shortcut: lanes of one session usually
// share a single output support, so a submit may omit xhat and set
// same_xhat to reuse the last support shipped on this session (the server
// remembers it in submit order; a submit that does carry xhat refreshes it
// even when that submit itself is refused — backpressure or a bad payload —
// so the sticky state tracks frames shipped, exactly mirroring the client's
// elision state across a 429-then-retry). Setting same_xhat before any lane
// shipped a support is a code-400 error frame.
type Frame struct {
	Type        string                `json:"type"`
	Proto       string                `json:"proto,omitempty"`
	MaxInflight int                   `json:"max_inflight,omitempty"`
	ID          string                `json:"id,omitempty"`
	Ticket      uint64                `json:"ticket,omitempty"`
	Submit      *service.WireMultiply `json:"submit,omitempty"`
	SameXhat    bool                  `json:"same_xhat,omitempty"`
	X           []service.WireEntry   `json:"x,omitempty"`
	Report      *service.WireReport   `json:"report,omitempty"`
	Code        int                   `json:"code,omitempty"`
	Error       string                `json:"error,omitempty"`
}

// Counter names published by the streaming layer (gauges noted).
const (
	MetricSessions      = "stream/sessions" // gauge: open sessions
	MetricSessionsTotal = "stream/sessions_total"
	MetricSubmits       = "stream/submits"
	MetricResults       = "stream/results"
	MetricErrors        = "stream/errors"
	MetricBackpressure  = "stream/backpressure" // submits rejected over the inflight cap
	MetricXhatReuse     = "stream/xhat_reuse"   // submits that reused the session's sticky support
	// MetricGoroutineHWM is a gauge tracking the goroutine high-water mark
	// sampled at submit time: the soak drill asserts it stays far below the
	// lane count, proving streamed lanes park no per-request goroutine.
	MetricGoroutineHWM = "stream/goroutines_hwm"
)
