package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lbmm/internal/obsv"
	"lbmm/internal/service"
)

// Config tunes the streaming handler. The zero value gets defaults.
type Config struct {
	// MaxInflight caps how many accepted lanes a session may have
	// outstanding (default 512). Submits beyond the cap are answered with a
	// code-429 error frame instead of a ticket — explicit backpressure the
	// client can pace against, advertised in the server hello.
	MaxInflight int
	// WriteTimeout bounds one frame write to the client (default 30s): a
	// session whose peer stops reading is torn down rather than left
	// holding results — and, transitively, worker goroutines — forever.
	WriteTimeout time.Duration
	// HelloTimeout bounds the wait for the client's opening hello frame
	// (default 10s): a peer that connects and never speaks — the endpoint is
	// unauthenticated — is reaped instead of pinning the handler and writer
	// goroutines for its connection's lifetime.
	HelloTimeout time.Duration
	// IdleTimeout bounds the silence between client frames after the hello
	// (default 5m): a session whose peer went away without closing its side
	// is reaped once its accepted lanes drain. An actively pipelining client
	// never comes near it; a client holding a session open across longer
	// pauses reconnects — one round, the cost the protocol already budgets.
	IdleTimeout time.Duration
	// Metrics receives the stream/* counters; a fresh set when nil. Pass
	// the server's set so they land beside serve/* and batch/*.
	Metrics *obsv.CounterSet
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewCounterSet()
	}
	return c
}

// NewHandler mounts the streaming session endpoint:
//
//	POST /stream/v1   one lbmm.stream.v1 session per request
//
// The handler answers over the same connection it reads from (HTTP
// full-duplex, chunked NDJSON both ways), so the whole session is one
// round of connection setup no matter how many lanes it carries.
func NewHandler(srv *service.Server, cfg Config) http.Handler {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /stream/v1", func(w http.ResponseWriter, r *http.Request) {
		serveSession(srv, cfg, w, r)
	})
	return mux
}

// session is one open streaming connection: the read loop (the handler
// goroutine itself) decodes frames and submits lanes; a single writer
// goroutine owns the response so frames never interleave; deliver callbacks
// run on batch-runner goroutines and enqueue outcomes.
type session struct {
	cfg     Config
	metrics *obsv.CounterSet
	ctx     context.Context
	cancel  context.CancelFunc
	out     chan Frame

	inflight atomic.Int64
	wg       sync.WaitGroup // outstanding delivers
	ticket   uint64         // read loop only
	// xhat is the session's sticky output support — the last one any submit
	// frame carried, accepted or not, reused by same_xhat lanes. Read loop
	// only.
	xhat []service.WirePos
}

func serveSession(srv *service.Server, cfg Config, w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		// The underlying ResponseWriter cannot interleave reads and writes
		// (exotic middleware wrapper): a streaming session is impossible.
		http.Error(w, "stream: full-duplex unsupported on this connection", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	s := &session{
		cfg:     cfg,
		metrics: cfg.Metrics,
		ctx:     ctx,
		cancel:  cancel,
		// Capacity covers the worst case of every accepted lane holding a
		// ticket and a result in flight at once, so a deliver callback's
		// enqueue only ever waits on the writer, never on channel space
		// contended by read-loop frames.
		out: make(chan Frame, 2*cfg.MaxInflight+16),
	}
	s.metrics.Add(MetricSessionsTotal, 1)
	s.metrics.Add(MetricSessions, 1)
	defer s.metrics.Add(MetricSessions, -1)

	writerDone := make(chan struct{})
	go s.writer(w, rc, writerDone)

	dec := json.NewDecoder(r.Body)
	// Best-effort (like the write deadlines): a ResponseWriter that supports
	// full duplex but not read deadlines still gets a working session, it
	// just cannot reap silent peers.
	_ = rc.SetReadDeadline(time.Now().Add(cfg.HelloTimeout))
	if err := readHello(dec); err != nil {
		s.send(Frame{Type: TypeError, Code: http.StatusBadRequest, Error: err.Error()})
		s.metrics.Add(MetricErrors, 1)
	} else {
		s.send(Frame{Type: TypeHello, Proto: Proto, MaxInflight: cfg.MaxInflight})
		s.readLoop(srv, rc, dec)
	}

	// The client closed its side (or sent garbage): every accepted lane
	// still owes exactly one outcome. Wait for the delivers, then let the
	// writer drain the tail of the outbox.
	s.wg.Wait()
	close(s.out)
	<-writerDone
}

func readHello(dec *json.Decoder) error {
	var f Frame
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("stream: session must open with a hello frame: %v", err)
	}
	if f.Type != TypeHello {
		return fmt.Errorf("stream: first frame must be hello, got %q", f.Type)
	}
	if f.Proto != Proto {
		return fmt.Errorf("stream: protocol %q not supported (want %s)", f.Proto, Proto)
	}
	return nil
}

// readLoop decodes frames until the client closes, sends garbage, or idles
// past IdleTimeout. It is the only goroutine that blocks in admission
// control, so a saturated server stalls the session's intake — backpressure
// by TCP — while already accepted lanes keep completing.
func (s *session) readLoop(srv *service.Server, rc *http.ResponseController, dec *json.Decoder) {
	for {
		// Re-armed per frame: the deadline bounds silence, not session length.
		_ = rc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		switch f.Type {
		case TypeSubmit:
			s.submit(srv, f)
		default:
			s.metrics.Add(MetricErrors, 1)
			s.send(Frame{Type: TypeError, ID: f.ID, Code: http.StatusBadRequest,
				Error: fmt.Sprintf("stream: unknown frame type %q", f.Type)})
		}
	}
}

func (s *session) submit(srv *service.Server, f Frame) {
	s.metrics.Add(MetricSubmits, 1)
	s.observeGoroutines()
	// The sticky support advances in submit order regardless of admission:
	// the client commits its own copy the moment it ships an explicit xhat,
	// so a submit rejected below (backpressure, bad payload) must still
	// refresh the server's — or a retry elided as same_xhat would silently
	// compute against the stale previous support.
	if f.Submit != nil && len(f.Submit.Xhat) > 0 {
		s.xhat = f.Submit.Xhat
	}
	if s.inflight.Load() >= int64(s.cfg.MaxInflight) {
		s.metrics.Add(MetricBackpressure, 1)
		s.send(Frame{Type: TypeError, ID: f.ID, Code: http.StatusTooManyRequests,
			Error: fmt.Sprintf("stream: session inflight cap %d reached", s.cfg.MaxInflight)})
		return
	}
	s.ticket++
	t := s.ticket
	s.send(Frame{Type: TypeTicket, ID: f.ID, Ticket: t})
	if f.Submit == nil {
		s.fail(f.ID, t, http.StatusBadRequest, fmt.Errorf("stream: submit frame carries no payload"))
		return
	}
	if f.SameXhat && len(f.Submit.Xhat) == 0 {
		if s.xhat == nil {
			s.fail(f.ID, t, http.StatusBadRequest,
				fmt.Errorf("stream: same_xhat set before any lane shipped a support"))
			return
		}
		s.metrics.Add(MetricXhatReuse, 1)
		f.Submit.Xhat = s.xhat
	}
	req, err := service.ParseWireMultiply(f.Submit)
	if err != nil {
		s.fail(f.ID, t, http.StatusBadRequest, err)
		return
	}
	id := f.ID
	s.inflight.Add(1)
	s.wg.Add(1)
	err = srv.MultiplySubmit(s.ctx, req, func(resp *service.MultiplyResponse, err error) {
		defer s.wg.Done()
		defer s.inflight.Add(-1)
		if err != nil {
			s.metrics.Add(MetricErrors, 1)
			s.send(Frame{Type: TypeError, ID: id, Ticket: t, Code: service.ErrStatus(err), Error: err.Error()})
			return
		}
		rep := service.BuildWireReport(resp)
		s.metrics.Add(MetricResults, 1)
		s.send(Frame{Type: TypeResult, ID: id, Ticket: t, X: service.WireEntries(resp.X), Report: &rep})
	})
	if err != nil {
		// Rejected synchronously: the deliver callback will never run.
		s.wg.Done()
		s.inflight.Add(-1)
		s.fail(id, t, service.ErrStatus(err), err)
	}
}

func (s *session) fail(id string, ticket uint64, code int, err error) {
	s.metrics.Add(MetricErrors, 1)
	s.send(Frame{Type: TypeError, ID: id, Ticket: ticket, Code: code, Error: err.Error()})
}

// send enqueues one frame for the writer, giving up if the session died —
// a deliver callback must never outlive the session blocked on its outbox.
func (s *session) send(f Frame) {
	select {
	case s.out <- f:
	case <-s.ctx.Done():
	}
}

// writer is the session's single response writer: frames leave in enqueue
// order, each bounded by WriteTimeout. A write failure (client gone, or a
// peer that stopped reading past the deadline) cancels the session so
// pending delivers drop their results instead of backing up into workers.
func (s *session) writer(w http.ResponseWriter, rc *http.ResponseController, done chan<- struct{}) {
	defer close(done)
	enc := json.NewEncoder(w)
	fail := func() {
		s.cancel()
		for range s.out { // drain so enqueuers never block on a dead writer
		}
	}
	for f := range s.out {
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := enc.Encode(f); err != nil {
			fail()
			return
		}
		// Coalesce the flush: frames already queued (a batch delivering its
		// lanes, a ticket right behind a result) go out in the same syscall.
	drain:
		for {
			select {
			case f, ok := <-s.out:
				if !ok {
					_ = rc.Flush()
					return
				}
				if err := enc.Encode(f); err != nil {
					fail()
					return
				}
			default:
				break drain
			}
		}
		_ = rc.Flush()
	}
}

// observeGoroutines maintains the goroutine high-water-mark gauge. The
// read-modify-write races with itself across sessions; the mark is for a
// soak assertion with orders-of-magnitude headroom, not an exact census.
func (s *session) observeGoroutines() {
	if cur := int64(runtime.NumGoroutine()); cur > s.metrics.Get(MetricGoroutineHWM) {
		s.metrics.Set(MetricGoroutineHWM, cur)
	}
}
