package cclique

import (
	"math/rand"
	"strings"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/ring"
)

func TestValidateRejectsDuplicatesAndRange(t *testing.T) {
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)},
		{From: 0, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 2)},
	})
	if err := p.Validate(4); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v", err)
	}
	p2 := &Plan{}
	p2.Append(Round{{From: 0, To: 9, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)}})
	if err := p2.Validate(4); err == nil {
		t.Error("range violation accepted")
	}
	// A full clique round is valid: n(n-1) messages, one per ordered pair.
	p3 := AllToAll(5, func(u lbm.NodeID) lbm.Key { return lbm.TKey(int32(u), 0, 0) },
		func(u lbm.NodeID) lbm.Key { return lbm.TKey(int32(u), 1, 0) })
	if err := p3.Validate(5); err != nil {
		t.Error(err)
	}
}

// TestSimulationTheorem executes the §1.5 statement: a 1-round clique
// all-to-all runs in exactly n−1 low-bandwidth rounds and delivers every
// message.
func TestSimulationTheorem(t *testing.T) {
	for _, n := range []int{4, 9, 16} {
		src := func(u lbm.NodeID) lbm.Key { return lbm.TKey(int32(u), 0, 0) }
		dst := func(u lbm.NodeID) lbm.Key { return lbm.TKey(int32(u), 1, 0) }
		cc := AllToAll(n, src, dst)

		m := lbm.New(n, ring.Counting{})
		for u := 0; u < n; u++ {
			m.Put(lbm.NodeID(u), src(lbm.NodeID(u)), ring.Value(u+100))
		}
		low, err := Simulate(cc, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(low); err != nil {
			t.Fatal(err)
		}
		// T_cc = 1 ⇒ T_lbm ≤ n·T_cc; with exact colouring it is n−1.
		if m.Rounds() != n-1 {
			t.Errorf("n=%d: simulated in %d rounds, want exactly %d", n, m.Rounds(), n-1)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				got, ok := m.Get(lbm.NodeID(v), dst(lbm.NodeID(u)))
				if !ok || got != ring.Value(u+100) {
					t.Fatalf("n=%d: %d's value missing at %d", n, u, v)
				}
			}
		}
	}
}

func TestSimulateRejectsInvalid(t *testing.T) {
	p := &Plan{}
	p.Append(Round{
		{From: 1, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)},
		{From: 1, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)},
	})
	if _, err := Simulate(p, 4); err == nil {
		t.Error("invalid plan simulated")
	}
}

// TestMultiRoundPipelines checks that multi-round clique plans compose: two
// clique rounds that forward values along a ring cost ≤ 2(n−1) rounds and
// move data two hops.
func TestMultiRoundPipelines(t *testing.T) {
	n := 6
	key := func(h int) lbm.Key { return lbm.TKey(int32(h), 7, 0) }
	m := lbm.New(n, ring.Counting{})
	for u := 0; u < n; u++ {
		m.Put(lbm.NodeID(u), key(0), ring.Value(u))
	}
	p := &Plan{}
	for hop := 0; hop < 2; hop++ {
		var r Round
		for u := 0; u < n; u++ {
			r = append(r, Send{
				From: lbm.NodeID(u), To: lbm.NodeID((u + 1) % n),
				Src: key(hop), Dst: key(hop + 1), Op: lbm.OpSet,
			})
		}
		p.Append(r)
	}
	low, err := Simulate(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(low); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() > 2*(n-1) {
		t.Errorf("two clique rounds took %d > 2(n-1) rounds", m.Rounds())
	}
	for u := 0; u < n; u++ {
		want := ring.Value((u + n - 2) % n)
		if got, _ := m.Get(lbm.NodeID(u), key(2)); got != want {
			t.Errorf("node %d two-hop value %v, want %v", u, got, want)
		}
	}
}

// TestDenseMMSimulation runs the O(n)-clique-round dense multiplication
// through the simulation: the plan is a valid clique plan (n rounds) whose
// low-bandwidth simulation costs Θ(n²) rounds, and the product is correct.
func TestDenseMMSimulation(t *testing.T) {
	n := 8
	r := ring.NewGFp(101)
	m := lbm.New(n, r)
	rng := rand.New(rand.NewSource(4))
	a := make([][]ring.Value, n)
	b := make([][]ring.Value, n)
	for i := 0; i < n; i++ {
		a[i] = make([]ring.Value, n)
		b[i] = make([]ring.Value, n)
		for j := 0; j < n; j++ {
			a[i][j] = r.Rand(rng)
			b[i][j] = r.Rand(rng)
			m.Put(lbm.NodeID(i), lbm.AKey(int32(i), int32(j)), a[i][j])
			m.Put(lbm.NodeID(i), lbm.BKey(int32(i), int32(j)), b[i][j])
		}
	}
	cc := DenseMM(n)
	if err := cc.Validate(n); err != nil {
		t.Fatal(err)
	}
	if len(cc.Rounds) != n {
		t.Fatalf("clique plan has %d rounds, want %d", len(cc.Rounds), n)
	}
	low, err := Simulate(cc, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(low); err != nil {
		t.Fatal(err)
	}
	// Θ(n²) low-bandwidth rounds: n clique rounds × (n−1) each.
	if got := m.Rounds(); got != n*(n-1) {
		t.Errorf("simulated in %d rounds, want %d", got, n*(n-1))
	}
	LocalMM(m, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			want := r.Zero()
			for j := 0; j < n; j++ {
				want = r.Add(want, r.Mul(a[i][j], b[j][k]))
			}
			got, _ := m.Get(lbm.NodeID(i), lbm.XKey(int32(i), int32(k)))
			if got != want {
				t.Fatalf("X(%d,%d) = %v, want %v", i, k, got, want)
			}
		}
	}
}
