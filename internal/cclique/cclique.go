// Package cclique implements the congested clique layer of the paper's
// §1.5 discussion: in the congested clique, each of the n computers may
// send one O(log n)-bit message to *every* other computer per round
// (n−1 sends and n−1 receives), and "any algorithm that runs in T(n) rounds
// in the congested clique model can be simulated in n·T(n) rounds in the
// low-bandwidth model". The Simulate function is that theorem made
// executable: each congested-clique round is an h-relation of degree at
// most n−1, which the edge-colouring scheduler realizes in at most n−1
// low-bandwidth rounds.
package cclique

import (
	"fmt"

	"lbmm/internal/lbm"
	"lbmm/internal/routing"
)

// Send is one congested-clique message.
type Send struct {
	From, To lbm.NodeID
	Src, Dst lbm.Key
	Op       lbm.Op
}

// Round is one congested-clique round: at most one message per ordered
// (From, To) pair.
type Round []Send

// Plan is a congested-clique communication plan.
type Plan struct {
	Rounds []Round
}

// Append adds a non-empty round.
func (p *Plan) Append(r Round) {
	if len(r) > 0 {
		p.Rounds = append(p.Rounds, r)
	}
}

// Validate checks the congested-clique constraint: within a round, every
// ordered pair of computers exchanges at most one message.
func (p *Plan) Validate(n int) error {
	for t, r := range p.Rounds {
		seen := make(map[[2]lbm.NodeID]bool, len(r))
		for _, s := range r {
			if s.From < 0 || int(s.From) >= n || s.To < 0 || int(s.To) >= n {
				return fmt.Errorf("cclique: round %d: %d->%d out of range", t, s.From, s.To)
			}
			pair := [2]lbm.NodeID{s.From, s.To}
			if seen[pair] {
				return fmt.Errorf("cclique: round %d: duplicate message %d->%d", t, s.From, s.To)
			}
			seen[pair] = true
		}
	}
	return nil
}

// Simulate compiles a congested-clique plan into a low-bandwidth plan
// (§1.5): each congested-clique round becomes at most n−1 low-bandwidth
// rounds, so a T-round clique algorithm costs at most (n−1)·T ≤ n·T rounds.
func Simulate(p *Plan, n int) (*lbm.Plan, error) {
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	out := &lbm.Plan{}
	for _, r := range p.Rounds {
		msgs := make([]routing.Msg, len(r))
		for i, s := range r {
			msgs[i] = routing.Msg{From: s.From, To: s.To, Src: s.Src, Dst: s.Dst, Op: s.Op}
		}
		out.Extend(routing.Schedule(msgs, routing.Auto))
	}
	return out, nil
}

// AllToAll returns the canonical 1-round congested-clique plan in which
// every computer broadcasts its value under src to every other computer
// (stored under a per-sender destination key built by dst). Simulating it
// in the low-bandwidth model costs exactly n−1 rounds — the gap between
// the models the paper's §1.5 calls out.
func AllToAll(n int, src func(from lbm.NodeID) lbm.Key, dst func(from lbm.NodeID) lbm.Key) *Plan {
	var r Round
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			r = append(r, Send{
				From: lbm.NodeID(u), To: lbm.NodeID(v),
				Src: src(lbm.NodeID(u)), Dst: dst(lbm.NodeID(u)), Op: lbm.OpSet,
			})
		}
	}
	p := &Plan{}
	p.Append(r)
	return p
}

// DenseMM returns the folklore O(n)-round congested-clique dense
// multiplication plan for the row layout (computer i holds rows i of A and
// B and reports row i of X): over n rounds, computer j streams a different
// element of its B row to every peer per round (round t sends B(j, (t+i+j)
// mod n) to peer i), so after n rounds computer i holds all of B and
// multiplies locally. Simulated in the low-bandwidth model this costs
// Θ(n²) rounds — the §1.5 observation that the clique model hides the
// per-computer bandwidth that the low-bandwidth model charges for.
//
// The returned plan only moves B; the caller runs the local products
// afterwards (LocalMM below).
func DenseMM(n int) *Plan {
	p := &Plan{}
	for t := 0; t < n; t++ {
		var r Round
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i == j {
					continue
				}
				k := (t + i + j) % n
				r = append(r, Send{
					From: lbm.NodeID(j), To: lbm.NodeID(i),
					Src: lbm.BKey(int32(j), int32(k)),
					Dst: lbm.BKey(int32(j), int32(k)),
					Op:  lbm.OpSet,
				})
			}
		}
		p.Append(r)
	}
	return p
}

// LocalMM finishes DenseMM: every computer multiplies its A row against the
// gathered B and stores its X row (free local computation).
func LocalMM(m *lbm.Machine, n int) {
	for i := 0; i < n; i++ {
		node := lbm.NodeID(i)
		for k := 0; k < n; k++ {
			acc := m.R.Zero()
			for j := 0; j < n; j++ {
				av, okA := m.Get(node, lbm.AKey(int32(i), int32(j)))
				bv, okB := m.Get(node, lbm.BKey(int32(j), int32(k)))
				if okA && okB {
					acc = m.R.Add(acc, m.R.Mul(av, bv))
				}
			}
			m.Put(node, lbm.XKey(int32(i), int32(k)), acc)
		}
	}
}
