package fewtri

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

func randomSupport(rng *rand.Rand, n, nnz int) *matrix.Support {
	entries := make([][2]int, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return matrix.NewSupport(n, entries)
}

// runInstance processes tris of inst via Lemma 3.1 and returns (result,
// rounds).
func runInstance(t *testing.T, r ring.Semiring, inst *graph.Instance,
	tris []graph.Triangle, kappa int, seed int64) (*matrix.Sparse, *matrix.Sparse, int) {
	t.Helper()
	a := matrix.Random(inst.Ahat, r, seed)
	b := matrix.Random(inst.Bhat, r, seed+1)
	m := lbm.New(inst.N, r)
	l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	if _, err := Process(m, inst.N, l, tris, kappa); err != nil {
		t.Fatal(err)
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewSparse(inst.N, r)
	for i, row := range inst.Xhat.Rows {
		for _, k := range row {
			want.Set(i, int(k), r.Zero())
		}
	}
	for _, tr := range tris {
		want.Add(int(tr.I), int(tr.K), r.Mul(a.Get(int(tr.I), int(tr.J)), b.Get(int(tr.J), int(tr.K))))
	}
	return got, want, m.Rounds()
}

func TestProcessAllTrianglesAllRings(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, r := range ring.All() {
		for trial := 0; trial < 4; trial++ {
			n := 6 + rng.Intn(20)
			inst := graph.NewInstance(n,
				randomSupport(rng, n, 4*n), randomSupport(rng, n, 4*n), randomSupport(rng, n, 3*n))
			tris := inst.Triangles()
			got, want, _ := runInstance(t, r, inst, tris, 0, int64(trial))
			if !matrix.Equal(got, want) {
				t.Fatalf("%s trial %d: wrong product", r.Name(), trial)
			}
		}
	}
}

func TestProcessSubsetOnly(t *testing.T) {
	// Lemma 3.1 must process exactly the given triangle set, nothing more.
	rng := rand.New(rand.NewSource(5))
	r := ring.Counting{}
	n := 16
	inst := graph.NewInstance(n,
		randomSupport(rng, n, 5*n), randomSupport(rng, n, 5*n), randomSupport(rng, n, 4*n))
	tris := inst.Triangles()
	if len(tris) < 4 {
		t.Skip("too few triangles")
	}
	subset := tris[:len(tris)/3]
	got, want, _ := runInstance(t, r, inst, subset, 0, 9)
	if !matrix.Equal(got, want) {
		t.Fatal("subset processing wrong")
	}
}

func TestProcessVariousKappa(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := ring.NewGFp(101)
	n := 14
	inst := graph.NewInstance(n,
		randomSupport(rng, n, 4*n), randomSupport(rng, n, 4*n), randomSupport(rng, n, 3*n))
	tris := inst.Triangles()
	minKappa := (len(tris) + n - 1) / n // the lemma's |T| ≤ κn precondition
	for _, kappa := range []int{minKappa, minKappa + 1, 2 * minKappa, 100000} {
		got, want, _ := runInstance(t, r, inst, tris, kappa, 11)
		if !matrix.Equal(got, want) {
			t.Fatalf("kappa=%d: wrong product", kappa)
		}
	}
}

func TestProcessEmpty(t *testing.T) {
	m := lbm.New(4, ring.Counting{})
	sup := matrix.NewSupport(4, nil)
	l := lbm.RowLayout(sup, sup, sup)
	if _, err := Process(m, 4, l, nil, 0); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() != 0 {
		t.Error("empty job must cost nothing")
	}
}

func TestSkewedInstanceBalanced(t *testing.T) {
	// A single I-node touching every triangle (maximal imbalance) — the
	// virtualization must spread the work and the result must be exact.
	n := 32
	r := ring.Counting{}
	var ae, be, xe [][2]int
	// A row 0 is dense; B is a permutation; X row 0 is dense.
	for j := 0; j < n; j++ {
		ae = append(ae, [2]int{0, j})
		be = append(be, [2]int{j, (j + 5) % n})
		xe = append(xe, [2]int{0, j})
	}
	inst := graph.NewInstance(n,
		matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe))
	tris := inst.Triangles()
	if len(tris) != n {
		t.Fatalf("expected %d triangles, got %d", n, len(tris))
	}
	kappa := 2
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	m := lbm.New(n, r)
	l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	job, err := Process(m, n, l, tris, kappa)
	if err != nil {
		t.Fatal(err)
	}
	if job.VirtualNodes < n/kappa {
		t.Errorf("expected ≥ %d virtual nodes, got %d", n/kappa, job.VirtualNodes)
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MulReference(a, b, inst.Xhat)
	if !matrix.Equal(got, want) {
		t.Fatal("skewed instance wrong product")
	}
	// No computer should have received vastly more than the κ-scale load.
	st := m.Stats()
	bound := int64(8*kappa + 2*n) // generous constant; the point is Θ(κ+d+log)
	if st.MaxRecvLoad() > bound {
		t.Errorf("max receive load %d exceeds O(κ+d) bound %d", st.MaxRecvLoad(), bound)
	}
}

func TestRoundsScaleWithKappa(t *testing.T) {
	// For a fixed US(d) instance, rounds should scale roughly like
	// O(κ + d + log m) — processing with a big κ budget cannot be cheaper
	// than with the natural κ, and halving the triangle count should
	// roughly halve the rounds at natural κ.
	rng := rand.New(rand.NewSource(77))
	r := ring.Boolean{}
	n, d := 128, 8
	us := func() *matrix.Support {
		var es [][2]int
		for t := 0; t < d; t++ {
			p := rng.Perm(n)
			for i, j := range p {
				es = append(es, [2]int{i, j})
			}
		}
		return matrix.NewSupport(n, es)
	}
	inst := graph.NewInstance(d, us(), us(), us())
	tris := inst.Triangles()
	if len(tris) < 20 {
		t.Skip("not enough triangles")
	}
	_, _, fullRounds := runInstance(t, r, inst, tris, 0, 3)
	_, _, halfRounds := runInstance(t, r, inst, tris[:len(tris)/2], 0, 3)
	if halfRounds > fullRounds {
		t.Errorf("half the triangles took more rounds (%d > %d)", halfRounds, fullRounds)
	}
	// Sanity: rounds are within a constant of κ+d+log|T| for natural κ.
	kappa := (3*len(tris) + n - 1) / n
	bound := 40.0 * (float64(kappa) + float64(d) + math.Log2(float64(len(tris))+2))
	if float64(fullRounds) > bound {
		t.Errorf("rounds %d exceed O(κ+d+log m) sanity bound %.0f", fullRounds, bound)
	}
}

func TestPlanRejectsTooManyTriangles(t *testing.T) {
	// κ=1 with more than n triangles on distinct pairs must be rejected.
	n := 4
	var tris []graph.Triangle
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 3; j++ {
			tris = append(tris, graph.Triangle{I: i, J: j, K: (i + j) % 4})
		}
	}
	sup := matrix.NewSupport(n, [][2]int{{0, 0}})
	l := lbm.RowLayout(sup, sup, sup)
	if _, err := Plan(n, l, tris, 1); err == nil {
		t.Error("expected κn overflow error")
	}
}

// TestQuickRandomSubsets is a property test: for random instances, random
// triangle subsets and random admissible κ, Lemma 3.1 processes exactly the
// subset, over a random ring.
func TestQuickRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	rings := ring.All()
	prop := func(seed int64) bool {
		n := 6 + rng.Intn(18)
		inst := graph.NewInstance(n,
			randomSupport(rng, n, 2+rng.Intn(4*n)),
			randomSupport(rng, n, 2+rng.Intn(4*n)),
			randomSupport(rng, n, 2+rng.Intn(4*n)))
		tris := inst.Triangles()
		// Random subset.
		var subset []graph.Triangle
		for _, tr := range tris {
			if rng.Intn(2) == 0 {
				subset = append(subset, tr)
			}
		}
		minKappa := (len(subset) + n - 1) / n
		kappa := minKappa + rng.Intn(5)
		r := rings[rng.Intn(len(rings))]
		got, want, _ := runInstance(t, r, inst, subset, kappa, seed)
		return matrix.Equal(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRunTwiceAccumulates documents replay semantics: a job's plans route
// from the original inputs each time, so running the same job twice
// accumulates every product twice into X (the cleanup between runs removes
// only staged copies, not inputs).
func TestRunTwiceAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := ring.Counting{}
	n := 12
	inst := graph.NewInstance(n,
		randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n))
	tris := inst.Triangles()
	if len(tris) == 0 {
		t.Skip("no triangles")
	}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	m := lbm.New(n, r)
	l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	job, err := Plan(n, l, tris, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(m, job); err != nil {
		t.Fatal(err)
	}
	if err := Run(m, job); err != nil {
		t.Fatal(err)
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		t.Fatal(err)
	}
	once := matrix.MulReference(a, b, inst.Xhat)
	for i, row := range inst.Xhat.Rows {
		for _, k := range row {
			if got.Get(i, int(k)) != 2*once.Get(i, int(k)) {
				t.Fatalf("X(%d,%d) = %v after two runs, want %v", i, k,
					got.Get(i, int(k)), 2*once.Get(i, int(k)))
			}
		}
	}
}
