package fewtri

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lbmm/internal/lbm"
)

// wireProd is the exported form of compiledProd.
type wireProd struct {
	A, B, Dst lbm.SlotRef
}

// wireJob is the exported gob form of CompiledJob.
type wireJob struct {
	Kappa        int
	VirtualNodes int
	Plans        []*lbm.CompiledPlan
	Prods        [][]wireProd
	Cleanup      []lbm.SlotRef
}

// GobEncode implements gob.GobEncoder so a compiled Lemma 3.1 job can be
// written into the persistent plan store and restored without re-running
// the virtual-computer assignment or the routing pipelines.
func (cj *CompiledJob) GobEncode() ([]byte, error) {
	w := wireJob{
		Kappa:        cj.kappa,
		VirtualNodes: cj.virtualNodes,
		Plans:        cj.plans,
		Prods:        make([][]wireProd, len(cj.prods)),
		Cleanup:      cj.cleanup,
	}
	for g, prods := range cj.prods {
		w.Prods[g] = make([]wireProd, len(prods))
		for i, p := range prods {
			w.Prods[g][i] = wireProd{A: p.a, B: p.b, Dst: p.dst}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, re-validating every embedded
// compiled plan: serialized jobs cross the same trust boundary as
// serialized Plans and are never handed to an executor unchecked.
func (cj *CompiledJob) GobDecode(data []byte) error {
	var w wireJob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if n := len(w.Plans); n != 0 && n != 9 {
		return fmt.Errorf("fewtri: decode job: %d communication plans (want 0 or 9)", n)
	}
	for i, cp := range w.Plans {
		if cp == nil {
			return fmt.Errorf("fewtri: decode job: plan %d missing", i)
		}
		if err := cp.Validate(); err != nil {
			return fmt.Errorf("fewtri: decode job plan %d: %w", i, err)
		}
	}
	cj.kappa = w.Kappa
	cj.virtualNodes = w.VirtualNodes
	cj.plans = w.Plans
	cj.prods = make([][]compiledProd, len(w.Prods))
	for g, prods := range w.Prods {
		cj.prods[g] = make([]compiledProd, len(prods))
		for i, p := range prods {
			cj.prods[g][i] = compiledProd{a: p.A, b: p.B, dst: p.Dst}
		}
	}
	cj.cleanup = w.Cleanup
	return nil
}

// ValidateRefs checks every slot reference the job touches against the
// per-node arena sizes it will execute in. The plans' instructions are
// bounded by their own NumSlots snapshots; the triangle products and
// cleanup refs are only checked here, where the arena geometry is known.
func (cj *CompiledJob) ValidateRefs(sizes []int32) error {
	if cj == nil {
		return nil
	}
	for i, cp := range cj.plans {
		if cp.N != len(sizes) {
			return fmt.Errorf("fewtri: plan %d compiled for %d nodes, arenas have %d", i, cp.N, len(sizes))
		}
		for v, sz := range cp.NumSlots {
			if sz > sizes[v] {
				return fmt.Errorf("fewtri: plan %d needs %d slots at node %d, arenas have %d", i, sz, v, sizes[v])
			}
		}
	}
	check := func(r lbm.SlotRef, what string) error {
		if r.Node < 0 || int(r.Node) >= len(sizes) {
			return fmt.Errorf("fewtri: %s node %d out of range (n=%d)", what, r.Node, len(sizes))
		}
		if r.Slot < 0 || r.Slot >= sizes[r.Node] {
			return fmt.Errorf("fewtri: %s slot %d out of range at node %d (%d slots)", what, r.Slot, r.Node, sizes[r.Node])
		}
		return nil
	}
	for _, prods := range cj.prods {
		for _, p := range prods {
			for _, r := range [...]lbm.SlotRef{p.a, p.b, p.dst} {
				if err := check(r, "product"); err != nil {
					return err
				}
			}
		}
	}
	for _, r := range cj.cleanup {
		if err := check(r, "cleanup"); err != nil {
			return err
		}
	}
	return nil
}
