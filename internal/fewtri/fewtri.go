// Package fewtri implements Lemma 3.1, the paper's central new tool: a set
// of triangles T with |T| ≤ κn and per-pair multiplicity ≤ m, with inputs
// and outputs spread ≤ d per computer, can be processed in O(κ + d + log m)
// rounds. This removes the factor-2 exponent loss of the prior work's
// second phase (O(d^{2-ε}) instead of O(d^{2-ε/2}) for d^{2-ε}n triangles).
//
// The construction follows §3 exactly:
//
//  1. Virtualization (§3.2). Each I-side node i with t(i) incident
//     triangles is split into ℓ(i) = ⌈t(i)/κ⌉ virtual computers, each
//     handling ≤ κ of i's triangles; virtual computers are assigned
//     round-robin to real computers (O(1) per computer).
//  2. Routing (§3.3), for A and then B: form the array of triples
//     (i, j, i') — "virtual computer i' needs A_ij" — sorted
//     lexicographically and cut into chunks of ≤ κ per real computer. The
//     input owner p(i,j) sends A_ij once to the anchor computer q(i,j)
//     holding the group's first triple (an O(d+κ)-round h-relation); the
//     value spreads along the group's computer range by parallel binary
//     broadcast trees (O(log m) rounds, the trees are conflict-free); each
//     triple holder forwards the value to its virtual computer (O(κ)).
//  3. Products and aggregation: each virtual computer multiplies its
//     triangles and pre-aggregates per output position (free local
//     computation); the converse routing runs over triples (i, k, i') with
//     local aggregation at triple holders, parallel binary convergecast
//     trees (O(log m)), and a final O(κ+d) h-relation accumulating each
//     total into the computer that must report X_ik.
package fewtri

import (
	"fmt"
	"sort"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
)

// Job is a preprocessed Lemma 3.1 execution.
type Job struct {
	// Kappa is the per-virtual-computer triangle budget actually used.
	Kappa int
	// VirtualNodes is |V'|, the number of I-side virtual computers.
	VirtualNodes int

	plans    []*lbm.Plan
	products []prodGroup
	cleanup  []hostKey
}

type hostKey struct {
	host lbm.NodeID
	key  lbm.Key
}

// prodGroup is the free local work of one virtual computer: multiply each
// triangle's pair and accumulate into the per-(i,k) partial key.
type prodGroup struct {
	host lbm.NodeID
	tris []graph.Triangle
	vid  int32
}

// aggSeq is the Seq used for the per-triple-holder aggregated partials
// (distinct from per-virtual-node partial keys, which use the vnode id).
const aggSeq = -1

// Plan preprocesses the processing of tris under Lemma 3.1. kappa ≤ 0
// selects the natural budget ⌈3|T|/n⌉ (so that |V'| ≤ 2n). The layout maps
// inputs and outputs to computers; outputs must be zero-initialized before
// Run.
func Plan(n int, l *lbm.Layout, tris []graph.Triangle, kappa int) (*Job, error) {
	if kappa <= 0 {
		kappa = (3*len(tris) + n - 1) / n
		if kappa == 0 {
			kappa = 1
		}
	}
	job := &Job{Kappa: kappa}
	if len(tris) == 0 {
		return job, nil
	}

	// --- Virtualization: split each I-node into chunks of ≤ κ triangles.
	// vnodeOf[t] is the virtual computer of triangle index t.
	order := append([]graph.Triangle(nil), tris...)
	graph.SortTriangles(order)
	vnodeOf := make([]int32, len(order))
	vnodeHost := []lbm.NodeID{}
	count := 0 // triangles assigned to the current vnode
	var curI int32 = -1
	for idx, t := range order {
		if t.I != curI || count == kappa {
			// Open a new virtual computer, assigned round-robin.
			vnodeHost = append(vnodeHost, lbm.NodeID(len(vnodeHost)%n))
			curI = t.I
			count = 0
		}
		vnodeOf[idx] = int32(len(vnodeHost) - 1)
		count++
	}
	job.VirtualNodes = len(vnodeHost)

	// Local product tasks per virtual computer.
	prodByVnode := make([][]graph.Triangle, len(vnodeHost))
	for idx, t := range order {
		prodByVnode[vnodeOf[idx]] = append(prodByVnode[vnodeOf[idx]], t)
	}
	for v, ts := range prodByVnode {
		job.products = append(job.products, prodGroup{host: vnodeHost[v], tris: ts, vid: int32(v)})
	}

	// --- Input routing for A and B.
	planA, cleanA, err := planInputRouting(n, kappa, order, vnodeOf, vnodeHost,
		func(t graph.Triangle) (int32, int32) { return t.I, t.J },
		func(i, j int32) (lbm.NodeID, lbm.Key) { return l.OwnerA(i, j), lbm.AKey(i, j) })
	if err != nil {
		return nil, err
	}
	planB, cleanB, err := planInputRouting(n, kappa, order, vnodeOf, vnodeHost,
		func(t graph.Triangle) (int32, int32) { return t.J, t.K },
		func(j, k int32) (lbm.NodeID, lbm.Key) { return l.OwnerB(j, k), lbm.BKey(j, k) })
	if err != nil {
		return nil, err
	}
	job.plans = append(job.plans, planA...)
	job.plans = append(job.plans, planB...)
	job.cleanup = append(job.cleanup, cleanA...)
	job.cleanup = append(job.cleanup, cleanB...)

	// --- Output routing: triples (i, k, i') deduplicated, sorted by (i,k).
	outPlans, outClean := planOutputRouting(n, kappa, order, vnodeOf, vnodeHost, l)
	job.plans = append(job.plans, outPlans...)
	job.cleanup = append(job.cleanup, outClean...)
	return job, nil
}

// triple is one entry of a §3.3 routing array.
type triple struct {
	a, b  int32 // the pair (sorted on)
	vnode int32
}

// planInputRouting builds the three §3.3 steps for one input matrix:
// owner → anchor h-relation, anchor broadcast trees, triple-holder → virtual
// computer h-relation.
func planInputRouting(n, kappa int, order []graph.Triangle, vnodeOf []int32, vnodeHost []lbm.NodeID,
	pairOf func(graph.Triangle) (int32, int32),
	ownerOf func(a, b int32) (lbm.NodeID, lbm.Key)) ([]*lbm.Plan, []hostKey, error) {

	// Deduplicated triples (a, b, vnode).
	seen := map[triple]struct{}{}
	var triples []triple
	for idx, t := range order {
		a, b := pairOf(t)
		tr := triple{a: a, b: b, vnode: vnodeOf[idx]}
		if _, dup := seen[tr]; dup {
			continue
		}
		seen[tr] = struct{}{}
		triples = append(triples, tr)
	}
	sort.Slice(triples, func(x, y int) bool {
		if triples[x].a != triples[y].a {
			return triples[x].a < triples[y].a
		}
		if triples[x].b != triples[y].b {
			return triples[x].b < triples[y].b
		}
		return triples[x].vnode < triples[y].vnode
	})

	// Chunk the array over the computers, ≤ κ triples each.
	per := (len(triples) + n - 1) / n
	if per > kappa {
		// The lemma guarantees |T| ≤ κn; more triples than κn means the
		// caller picked κ too small.
		per = kappa
		if per*n < len(triples) {
			return nil, nil, fmt.Errorf("fewtri: %d triples exceed κn = %d·%d", len(triples), kappa, n)
		}
	}
	holder := func(idx int) lbm.NodeID { return lbm.NodeID(idx / per) }

	var cleanup []hostKey

	// Step 1: owner → anchor.
	var anchorMsgs []routing.Msg
	groupStart := 0
	type span struct {
		a, b     int32
		from, to int // triple index range [from, to)
	}
	var spans []span
	for idx := 1; idx <= len(triples); idx++ {
		if idx == len(triples) || triples[idx].a != triples[groupStart].a || triples[idx].b != triples[groupStart].b {
			spans = append(spans, span{a: triples[groupStart].a, b: triples[groupStart].b, from: groupStart, to: idx})
			groupStart = idx
		}
	}
	for _, sp := range spans {
		owner, key := ownerOf(sp.a, sp.b)
		anchor := holder(sp.from)
		anchorMsgs = append(anchorMsgs, routing.Msg{From: owner, To: anchor, Src: key, Dst: key, Op: lbm.OpSet})
		if anchor != owner {
			cleanup = append(cleanup, hostKey{anchor, key})
		}
	}
	step1 := routing.Schedule(anchorMsgs, routing.Auto)

	// Step 2: spread along each group's computer range by broadcast trees.
	var groups []routing.Group
	for _, sp := range spans {
		first := holder(sp.from)
		last := holder(sp.to - 1)
		if first == last {
			continue
		}
		_, key := ownerOf(sp.a, sp.b)
		nodes := make([]lbm.NodeID, 0, int(last-first)+1)
		for c := first; c <= last; c++ {
			nodes = append(nodes, c)
			if c != first {
				owner, _ := ownerOf(sp.a, sp.b)
				if c != owner {
					cleanup = append(cleanup, hostKey{c, key})
				}
			}
		}
		groups = append(groups, routing.Group{Nodes: nodes, Key: key})
	}
	step2 := routing.BroadcastPlan(groups)

	// Step 3: triple holder → virtual computer host.
	var fwd []routing.Msg
	for idx, tr := range triples {
		_, key := ownerOf(tr.a, tr.b)
		dst := vnodeHost[tr.vnode]
		src := holder(idx)
		fwd = append(fwd, routing.Msg{From: src, To: dst, Src: key, Dst: key, Op: lbm.OpSet})
		owner, _ := ownerOf(tr.a, tr.b)
		if dst != owner {
			cleanup = append(cleanup, hostKey{dst, key})
		}
	}
	step3 := routing.Schedule(fwd, routing.Auto)

	return []*lbm.Plan{step1, step2, step3}, cleanup, nil
}

// planOutputRouting builds the converse of the input routing for the
// products: virtual computer → triple holder (with local aggregation),
// convergecast trees, anchor → output owner.
func planOutputRouting(n, kappa int, order []graph.Triangle, vnodeOf []int32, vnodeHost []lbm.NodeID,
	l *lbm.Layout) ([]*lbm.Plan, []hostKey) {

	seen := map[triple]struct{}{}
	var triples []triple
	for idx, t := range order {
		tr := triple{a: t.I, b: t.K, vnode: vnodeOf[idx]}
		if _, dup := seen[tr]; dup {
			continue
		}
		seen[tr] = struct{}{}
		triples = append(triples, tr)
	}
	sort.Slice(triples, func(x, y int) bool {
		if triples[x].a != triples[y].a {
			return triples[x].a < triples[y].a
		}
		if triples[x].b != triples[y].b {
			return triples[x].b < triples[y].b
		}
		return triples[x].vnode < triples[y].vnode
	})
	per := (len(triples) + n - 1) / n
	if per < 1 {
		per = 1
	}
	holder := func(idx int) lbm.NodeID { return lbm.NodeID(idx / per) }

	var cleanup []hostKey

	// Step 1: route each virtual computer's pre-aggregated partial to its
	// triple holder, accumulating co-located partials on arrival.
	var route []routing.Msg
	for idx, tr := range triples {
		src := lbm.PKey(tr.a, tr.b, tr.vnode)
		dst := lbm.PKey(tr.a, tr.b, aggSeq)
		route = append(route, routing.Msg{
			From: vnodeHost[tr.vnode], To: holder(idx),
			Src: src, Dst: dst, Op: lbm.OpAcc,
		})
		cleanup = append(cleanup, hostKey{vnodeHost[tr.vnode], src})
		cleanup = append(cleanup, hostKey{holder(idx), dst})
	}
	step1 := routing.Schedule(route, routing.Auto)

	// Step 2: convergecast each (i,k) group's partials into its anchor.
	var groups []routing.Group
	groupStart := 0
	type span struct {
		a, b     int32
		from, to int
	}
	var spans []span
	for idx := 1; idx <= len(triples); idx++ {
		if idx == len(triples) || triples[idx].a != triples[groupStart].a || triples[idx].b != triples[groupStart].b {
			spans = append(spans, span{a: triples[groupStart].a, b: triples[groupStart].b, from: groupStart, to: idx})
			groupStart = idx
		}
	}
	for _, sp := range spans {
		first := holder(sp.from)
		last := holder(sp.to - 1)
		if first == last {
			continue
		}
		nodes := make([]lbm.NodeID, 0, int(last-first)+1)
		for c := first; c <= last; c++ {
			nodes = append(nodes, c)
		}
		groups = append(groups, routing.Group{Nodes: nodes, Key: lbm.PKey(sp.a, sp.b, aggSeq)})
	}
	step2 := routing.ConvergecastPlan(groups)

	// Step 3: anchor → output owner, accumulated into X.
	var final []routing.Msg
	for _, sp := range spans {
		anchor := holder(sp.from)
		owner := l.OwnerX(sp.a, sp.b)
		final = append(final, routing.Msg{
			From: anchor, To: owner,
			Src: lbm.PKey(sp.a, sp.b, aggSeq), Dst: lbm.XKey(sp.a, sp.b), Op: lbm.OpAcc,
		})
	}
	step3 := routing.Schedule(final, routing.Auto)

	return []*lbm.Plan{step1, step2, step3}, cleanup
}

// Run executes the job: input routing plans, the free local products, then
// the output routing plans, and finally cleans up all staged copies.
func Run(m *lbm.Machine, job *Job) error {
	// plans layout: [A1 A2 A3 B1 B2 B3 out1 out2 out3]; the products happen
	// between B3 and out1.
	if len(job.plans) == 0 {
		return nil
	}
	if len(job.plans) != 9 {
		return fmt.Errorf("fewtri: internal error: %d plans", len(job.plans))
	}
	labels := [9]string{
		"lemma31:A anchor", "lemma31:A spread", "lemma31:A forward",
		"lemma31:B anchor", "lemma31:B spread", "lemma31:B forward",
		"lemma31:out route", "lemma31:out reduce", "lemma31:out deliver",
	}
	// Structured phase names (the legacy Mark labels above are kept for the
	// flat Trace view); anchor/spread/forward are §3.3's three input steps,
	// route/aggregate/deliver their converses for the outputs.
	phases := [9]string{
		"A/anchor", "A/spread", "A/forward",
		"B/anchor", "B/spread", "B/forward",
		"out/route", "out/aggregate", "out/deliver",
	}
	m.BeginPhase("lemma31")
	defer m.EndPhase()
	m.Counter("kappa", float64(job.Kappa))
	m.Counter("virtual_nodes", float64(job.VirtualNodes))
	runStep := func(i int, p *lbm.Plan, what string) error {
		m.Mark(labels[i])
		m.BeginPhase(phases[i])
		err := m.Run(p)
		m.EndPhase()
		if err != nil {
			return fmt.Errorf("fewtri %s routing: %w", what, err)
		}
		return nil
	}
	for i, p := range job.plans[:6] {
		if err := runStep(i, p, "input"); err != nil {
			return err
		}
	}
	m.BeginPhase("products")
	for _, pg := range job.products {
		if !m.Owns(pg.host) {
			continue
		}
		m.Counter("triangles", float64(len(pg.tris)))
		for _, t := range pg.tris {
			av := m.MustGet(pg.host, lbm.AKey(t.I, t.J))
			bv := m.MustGet(pg.host, lbm.BKey(t.J, t.K))
			m.Acc(pg.host, lbm.PKey(t.I, t.K, pg.vid), m.R.Mul(av, bv))
		}
	}
	m.EndPhase()
	for i, p := range job.plans[6:] {
		if err := runStep(6+i, p, "output"); err != nil {
			return err
		}
	}
	for _, ck := range job.cleanup {
		m.Del(ck.host, ck.key)
	}
	return nil
}

// compiledProd is one triangle product lowered to arena addressing:
// dst += a*b.
type compiledProd struct {
	a, b, dst lbm.SlotRef
}

// CompiledJob is a Job lowered to the slot-addressed executable form.
type CompiledJob struct {
	kappa        int
	virtualNodes int
	plans        []*lbm.CompiledPlan
	// prods keeps the per-virtual-computer grouping so counter replay
	// matches the map engine's one Counter("triangles") per group.
	prods   [][]compiledProd
	cleanup []lbm.SlotRef
}

// Compile lowers a job into the shared slot space.
func Compile(sp *lbm.SlotSpace, job *Job) (*CompiledJob, error) {
	cj := &CompiledJob{kappa: job.Kappa, virtualNodes: job.VirtualNodes}
	if len(job.plans) == 0 {
		return cj, nil
	}
	if len(job.plans) != 9 {
		return nil, fmt.Errorf("fewtri: internal error: %d plans", len(job.plans))
	}
	for i, p := range job.plans[:6] {
		cp, err := lbm.CompileInto(sp, p)
		if err != nil {
			return nil, fmt.Errorf("fewtri: compile input plan %d: %w", i, err)
		}
		cj.plans = append(cj.plans, cp)
	}
	for _, pg := range job.products {
		prods := make([]compiledProd, 0, len(pg.tris))
		for _, t := range pg.tris {
			prods = append(prods, compiledProd{
				a:   sp.Ref(pg.host, lbm.AKey(t.I, t.J)),
				b:   sp.Ref(pg.host, lbm.BKey(t.J, t.K)),
				dst: sp.Ref(pg.host, lbm.PKey(t.I, t.K, pg.vid)),
			})
		}
		cj.prods = append(cj.prods, prods)
	}
	for i, p := range job.plans[6:] {
		cp, err := lbm.CompileInto(sp, p)
		if err != nil {
			return nil, fmt.Errorf("fewtri: compile output plan %d: %w", 6+i, err)
		}
		cj.plans = append(cj.plans, cp)
	}
	for _, ck := range job.cleanup {
		cj.cleanup = append(cj.cleanup, sp.Ref(ck.host, ck.key))
	}
	return cj, nil
}

// MemoryBytes estimates the resident size of the compiled job.
func (cj *CompiledJob) MemoryBytes() int64 {
	if cj == nil {
		return 0
	}
	var n int64
	for _, cp := range cj.plans {
		n += cp.MemoryBytes()
	}
	for _, prods := range cj.prods {
		n += int64(len(prods)) * 24
	}
	return n + int64(len(cj.cleanup))*8
}

// AddNodeLoads accumulates the job's per-node real-message loads over every
// compiled routing plan (local triangle products move no messages).
func (cj *CompiledJob) AddNodeLoads(send, recv []int64) {
	if cj == nil {
		return
	}
	for _, cp := range cj.plans {
		cp.AddNodeLoads(send, recv)
	}
}

// RunCompiled executes a compiled job, mirroring Run phase for phase.
func RunCompiled(x *lbm.Exec, cj *CompiledJob) error {
	if len(cj.plans) == 0 {
		return nil
	}
	labels := [9]string{
		"lemma31:A anchor", "lemma31:A spread", "lemma31:A forward",
		"lemma31:B anchor", "lemma31:B spread", "lemma31:B forward",
		"lemma31:out route", "lemma31:out reduce", "lemma31:out deliver",
	}
	phases := [9]string{
		"A/anchor", "A/spread", "A/forward",
		"B/anchor", "B/spread", "B/forward",
		"out/route", "out/aggregate", "out/deliver",
	}
	x.BeginPhase("lemma31")
	defer x.EndPhase()
	x.Counter("kappa", float64(cj.kappa))
	x.Counter("virtual_nodes", float64(cj.virtualNodes))
	runStep := func(i int, cp *lbm.CompiledPlan, what string) error {
		x.Mark(labels[i])
		x.BeginPhase(phases[i])
		err := x.Run(cp)
		x.EndPhase()
		if err != nil {
			return fmt.Errorf("fewtri %s routing: %w", what, err)
		}
		return nil
	}
	for i, cp := range cj.plans[:6] {
		if err := runStep(i, cp, "input"); err != nil {
			return err
		}
	}
	x.BeginPhase("products")
	if K := x.Lanes(); K == 1 {
		for _, prods := range cj.prods {
			if len(prods) > 0 && !x.Owns(prods[0].a.Node) {
				continue // whole group lives at one host
			}
			x.Counter("triangles", float64(len(prods)))
			for _, p := range prods {
				av := x.MustGetSlot(p.a)
				bv := x.MustGetSlot(p.b)
				x.AccSlot(p.dst, x.R.Mul(av, bv))
			}
		}
	} else {
		buf := make([]ring.Value, K)
		for _, prods := range cj.prods {
			if len(prods) > 0 && !x.Owns(prods[0].a.Node) {
				continue // whole group lives at one host
			}
			x.Counter("triangles", float64(len(prods)))
			for _, p := range prods {
				as := x.MustLanes(p.a)
				bs := x.MustLanes(p.b)
				for l := 0; l < K; l++ {
					buf[l] = x.R.Mul(as[l], bs[l])
				}
				x.AccLanes(p.dst, buf)
			}
		}
	}
	x.EndPhase()
	for i, cp := range cj.plans[6:] {
		if err := runStep(6+i, cp, "output"); err != nil {
			return err
		}
	}
	for _, ref := range cj.cleanup {
		x.ClearSlot(ref)
	}
	return nil
}

// Process is the convenience wrapper: plan and run in one call.
func Process(m *lbm.Machine, n int, l *lbm.Layout, tris []graph.Triangle, kappa int) (*Job, error) {
	job, err := Plan(n, l, tris, kappa)
	if err != nil {
		return nil, err
	}
	if err := Run(m, job); err != nil {
		return nil, err
	}
	return job, nil
}
