package lower

import (
	"math/bits"
	"math/rand"
	"testing"

	"lbmm/internal/algo"
	"lbmm/internal/fewtri"
	lbmpkg "lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

func TestSumInstanceShapeAndClasses(t *testing.T) {
	n := 16
	inst := SumInstance(n)
	if inst.CountTriangles() != n {
		t.Fatalf("sum instance has %d triangles, want %d", inst.CountTriangles(), n)
	}
	a, b, x := inst.Classify()
	// One dense row is CS(1) ⊆ BD(1); one dense column is RS(1) ⊆ BD(1);
	// the single output is US(1).
	if !matrix.BD.Contains(a) || !matrix.BD.Contains(b) || x != matrix.US {
		t.Errorf("classes %v %v %v, want BD-contained, BD-contained, US", a, b, x)
	}
}

func TestBroadcastInstanceShape(t *testing.T) {
	n := 16
	inst := BroadcastInstance(n)
	if inst.CountTriangles() != n {
		t.Fatalf("broadcast instance has %d triangles", inst.CountTriangles())
	}
	_, b, _ := inst.Classify()
	if b != matrix.US {
		t.Errorf("B class %v, want US", b)
	}
}

// TestSumIsCorrectAndPaysLog runs the repository's algorithm on the sum
// instance and verifies (a) correctness and (b) that it pays at least the
// Ω(log n) of Theorem 6.15 (it must: the result aggregates n values).
func TestSumIsCorrectAndPaysLog(t *testing.T) {
	r := ring.Counting{}
	for _, n := range []int{8, 64, 256} {
		inst := SumInstance(n)
		a := matrix.Random(inst.Ahat, r, int64(n))
		b := matrix.Random(inst.Bhat, r, 1)
		// Make B all ones per the construction.
		for j := 0; j < n; j++ {
			b.Set(j, 0, 1)
		}
		res, got, err := algo.Solve(r, inst, a, b, algo.LemmaOnly)
		if err != nil {
			t.Fatal(err)
		}
		want := ring.Value(0)
		for j := 0; j < n; j++ {
			want += a.Get(0, j)
		}
		if got.Get(0, 0) != want {
			t.Fatalf("n=%d: sum = %v, want %v", n, got.Get(0, 0), want)
		}
		if res.Rounds < SumBound(n) {
			t.Errorf("n=%d: %d rounds beat the Ω(log n) bound %d — impossible", n, res.Rounds, SumBound(n))
		}
		// And the upper bound side of Theorem 5.x: O(d² + log n) with d=1
		// means a few dozen rounds even at n=256, far below √n or n.
		if res.Rounds > 12*SumBound(n)+40 {
			t.Errorf("n=%d: %d rounds is not O(d²+log n)-ish", n, res.Rounds)
		}
	}
}

func TestBroadcastIsCorrectAndPaysLog(t *testing.T) {
	r := ring.Counting{}
	for _, n := range []int{8, 64, 256} {
		inst := BroadcastInstance(n)
		a := matrix.Random(inst.Ahat, r, 1)
		for i := 0; i < n; i++ {
			a.Set(i, 0, 1) // ones per the construction
		}
		b := matrix.Random(inst.Bhat, r, int64(n))
		res, got, err := algo.Solve(r, inst, a, b, algo.LemmaOnly)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got.Get(i, 0) != b.Get(0, 0) {
				t.Fatalf("n=%d: computer %d did not learn b", n, i)
			}
		}
		if res.Rounds < BroadcastFanInBound(n) {
			t.Errorf("n=%d: %d rounds beat the fan-in bound %d — impossible", n, res.Rounds, BroadcastFanInBound(n))
		}
	}
}

func TestBoundValues(t *testing.T) {
	if BroadcastFanInBound(1) != 0 || BroadcastFanInBound(3) != 1 || BroadcastFanInBound(4) != 2 ||
		BroadcastFanInBound(27) != 3 || BroadcastFanInBound(28) != 4 {
		t.Error("fan-in bound values wrong")
	}
	if DegreeBound(1) != 0 || DegreeBound(2) != 1 || DegreeBound(1024) != 10 || DegreeBound(1025) != 11 {
		t.Error("degree bound values wrong")
	}
	if SqrtBound(16) != 4 || SqrtBound(17) != 5 {
		t.Error("sqrt bound values wrong")
	}
}

func TestBooleanDegreeKnownFunctions(t *testing.T) {
	for n := 1; n <= 10; n++ {
		n := n
		or := func(m uint32) bool { return m != 0 }
		and := func(m uint32) bool { return bits.OnesCount32(m) == n }
		xor := func(m uint32) bool { return bits.OnesCount32(m)%2 == 1 }
		first := func(m uint32) bool { return m&1 != 0 }
		constant := func(uint32) bool { return true }
		if got := BooleanDegree(or, n); got != n {
			t.Errorf("deg(OR_%d) = %d", n, got)
		}
		if got := BooleanDegree(and, n); got != n {
			t.Errorf("deg(AND_%d) = %d", n, got)
		}
		if got := BooleanDegree(xor, n); got != n {
			t.Errorf("deg(XOR_%d) = %d", n, got)
		}
		if got := BooleanDegree(first, n); got != 1 {
			t.Errorf("deg(x_1) = %d over n=%d", got, n)
		}
		if got := BooleanDegree(constant, n); got != 0 {
			t.Errorf("deg(1) = %d", got)
		}
	}
}

func TestUSGMInstanceShape(t *testing.T) {
	n := 12
	inst := USGMInstance(n)
	a, b, x := inst.Classify()
	if a != matrix.US {
		t.Errorf("A class %v, want US", a)
	}
	if b != matrix.GM || x != matrix.GM {
		t.Errorf("B,X classes %v,%v, want GM,GM", b, x)
	}
	// 2n² triangles: each (i,k) has exactly the two diagonal js.
	if got := inst.CountTriangles(); got != 2*n*n {
		t.Errorf("triangles = %d, want %d", got, 2*n*n)
	}
}

func TestRSCSInstanceShapeAndHardness(t *testing.T) {
	n := 16
	inst := RSCSInstance(n)
	a, b, x := inst.Classify()
	if a != matrix.RS || b != matrix.CS || x != matrix.GM {
		t.Errorf("classes %v %v %v, want RS CS GM", a, b, x)
	}
	if got := inst.CountTriangles(); got != n*n {
		t.Errorf("triangles = %d, want %d", got, n*n)
	}
	// Row layout (computer i reports row i of X): every computer owns n
	// outputs spanning n ≥ √n columns → forced receives ≥ √n − 1.
	forced := ForcedReceivesRSCS(n, func(i, k int) int { return i })
	if forced < SqrtBound(n)-1 {
		t.Errorf("forced receives %d below √n bound %d", forced, SqrtBound(n)-1)
	}
}

// TestRSCSExecutionPaysSqrt runs the outer-product hard instance and checks
// the measured rounds and receive loads respect Theorem 6.27.
func TestRSCSExecutionPaysSqrt(t *testing.T) {
	r := ring.Counting{}
	for _, n := range []int{16, 64} {
		inst := RSCSInstance(n)
		a := matrix.Random(inst.Ahat, r, 3)
		b := matrix.Random(inst.Bhat, r, 4)
		res, got, err := algo.Solve(r, inst, a, b, algo.LemmaOnly)
		if err != nil {
			t.Fatal(err)
		}
		if err := algo.Verify(got, a, b, inst.Xhat); err != nil {
			t.Fatal(err)
		}
		if res.Rounds < SqrtBound(n)-1 {
			t.Errorf("n=%d: %d rounds beat the Ω(√n) bound %d — impossible", n, res.Rounds, SqrtBound(n))
		}
		if res.Stats.MaxRecvLoad() < int64(SqrtBound(n)-1) {
			t.Errorf("n=%d: max receive load %d below forced %d", n, res.Stats.MaxRecvLoad(), SqrtBound(n)-1)
		}
	}
}

// TestPackingReduction executes the Theorem 6.19 reduction end to end: a
// dense m×m product solved through the AS(1) packing, with the round
// accounting T'(m) = m·T(m²).
func TestPackingReduction(t *testing.T) {
	r := ring.NewGFp(101)
	m := 5
	inst := PackDense(m)
	if inst.N != m*m {
		t.Fatalf("packed n = %d", inst.N)
	}
	if !inst.Ahat.IsAS(1) {
		t.Error("packed instance is not AS(1)")
	}
	a := matrix.Random(inst.Ahat, r, 7)
	b := matrix.Random(inst.Bhat, r, 8)
	res, got, err := algo.Solve(r, inst, a, b, algo.LemmaOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := algo.Verify(got, a, b, inst.Xhat); err != nil {
		t.Fatal(err)
	}
	tPrime := ReductionRounds(m, res.Rounds)
	if tPrime != m*res.Rounds {
		t.Error("accounting wrong")
	}
	// Sanity of the conditional bound values.
	if ConditionalBound(64, 4.0/3.0) <= 1 {
		t.Error("conditional bound degenerate")
	}
}

// TestDegreeGrowthBound is Lemma 6.5's proof made executable on a real
// protocol: run the library's algorithm on the OR instance for EVERY
// Boolean input vector, partition the inputs by the output computer's final
// result, and check that the partition classes' characteristic-polynomial
// degrees are at most 2^T for the T rounds the protocol used — the
// deg(𝒢(T)) ≤ 2^T invariant.
func TestDegreeGrowthBound(t *testing.T) {
	n := 8
	inst := SumInstance(n) // over Boolean, X(0,0) = OR of the inputs
	r := ring.Boolean{}

	outputs := make([]bool, 1<<n)
	rounds := 0
	for mask := 0; mask < 1<<n; mask++ {
		// The support is fixed (the full row) in the supported model; an
		// input bit 0 is an explicit stored zero, so we load values
		// (including zeros) for every support position directly — the plan
		// must depend only on the support, never on the values.
		m := lbmpkg.New(n, r)
		l := lbmpkg.BalancedLayout(inst.Ahat, inst.Bhat, inst.Xhat)
		// Load A values (including zeros) per the support.
		for j := 0; j < n; j++ {
			v := ring.Value(0)
			if mask&(1<<j) != 0 {
				v = 1
			}
			m.Put(l.OwnerA(0, int32(j)), lbmpkg.AKey(0, int32(j)), v)
		}
		for j := 0; j < n; j++ {
			m.Put(l.OwnerB(int32(j), 0), lbmpkg.BKey(int32(j), 0), 1)
		}
		lbmpkg.ZeroOutputs(m, l, inst.Xhat)
		tris := inst.Triangles()
		if _, err := fewtri.Process(m, n, l, tris, 0); err != nil {
			t.Fatal(err)
		}
		v, ok := m.Get(l.OwnerX(0, 0), lbmpkg.XKey(0, 0))
		if !ok {
			t.Fatal("output missing")
		}
		outputs[mask] = v == 1
		if m.Rounds() > rounds {
			rounds = m.Rounds()
		}

		// Sanity: the protocol really computes OR.
		if want := mask != 0; outputs[mask] != want {
			t.Fatalf("mask %b: output %v", mask, outputs[mask])
		}
	}
	// The output partitions {0,1}^n into two classes; their degrees must
	// obey deg ≤ 2^T.
	degTrue := BooleanDegree(func(m uint32) bool { return outputs[m] }, n)
	if degTrue != n {
		t.Fatalf("protocol's output degree %d, want %d (it computes OR)", degTrue, n)
	}
	if float64(int(1)<<rounds) < float64(degTrue) {
		t.Fatalf("Lemma 6.5 violated?! deg %d > 2^%d", degTrue, rounds)
	}
	// And the implied lower bound holds with slack.
	if rounds < DegreeBound(degTrue) {
		t.Fatalf("rounds %d below the degree bound %d — impossible", rounds, DegreeBound(degTrue))
	}
}

// TestDegreeCalculusLemma64 checks the degree rules of Lemma 6.4 on random
// Boolean functions via the executable degree machinery.
func TestDegreeCalculusLemma64(t *testing.T) {
	n := 6
	size := uint32(1) << n
	rng := rand.New(rand.NewSource(5))
	randFn := func() []bool {
		f := make([]bool, size)
		for i := range f {
			f[i] = rng.Intn(2) == 0
		}
		return f
	}
	deg := func(f []bool) int {
		return BooleanDegree(func(m uint32) bool { return f[m] }, n)
	}
	for trial := 0; trial < 30; trial++ {
		f, g := randFn(), randFn()
		df, dg := deg(f), deg(g)
		and := make([]bool, size)
		or := make([]bool, size)
		not := make([]bool, size)
		fAndNotG := make([]bool, size)
		for m := range and {
			and[m] = f[m] && g[m]
			or[m] = f[m] || g[m]
			not[m] = !f[m]
			fAndNotG[m] = f[m] && !g[m]
		}
		// (a) deg(f∧g) ≤ deg f + deg g.
		if got := deg(and); got > df+dg {
			t.Fatalf("AND degree %d > %d+%d", got, df, dg)
		}
		// (b) deg(¬f) = deg(f) — except the degenerate all-false/all-true
		// flip where both sides are 0 vs 0; Lemma 6.4(b) handles constants
		// consistently because deg(1−f) includes the constant term.
		dn := deg(not)
		if df == 0 && dn != 0 {
			// f constant ⇒ ¬f constant.
			t.Fatalf("negation of constant has degree %d", dn)
		}
		if df > 0 && dn != df {
			t.Fatalf("deg(¬f) = %d != deg(f) = %d", dn, df)
		}
		// (c) deg(f∨g) ≤ deg f + deg g.
		if got := deg(or); got > df+dg {
			t.Fatalf("OR degree %d > %d+%d", got, df, dg)
		}
		// (e) deg(f∧¬g) ≤ deg f + deg g.
		if got := deg(fAndNotG); got > df+dg {
			t.Fatalf("f∧¬g degree %d > %d+%d", got, df, dg)
		}
	}
	// (d) disjoint OR: deg(f∨g) ≤ max(deg f, deg g) when f∧g ≡ 0.
	for trial := 0; trial < 30; trial++ {
		// Build disjoint f, g by splitting the true-set of a random h.
		h := randFn()
		f := make([]bool, size)
		g := make([]bool, size)
		for m := range h {
			if h[m] {
				if rng.Intn(2) == 0 {
					f[m] = true
				} else {
					g[m] = true
				}
			}
		}
		or := make([]bool, size)
		for m := range or {
			or[m] = f[m] || g[m]
		}
		df, dg := deg(f), deg(g)
		mx := df
		if dg > mx {
			mx = dg
		}
		if got := deg(or); got > mx {
			t.Fatalf("disjoint OR degree %d > max(%d,%d)", got, df, dg)
		}
	}
}

func TestSqrtBoundLayoutIndependent(t *testing.T) {
	// Whatever canonical layout the adversary picks for the outer-product
	// instance, some computer is forced to receive ≥ √n − 1 foreign values.
	for _, n := range []int{16, 64, 144} {
		forced, layout := MinForcedReceivesRSCS(n)
		if forced < SqrtBound(n)-1 {
			t.Errorf("n=%d: layout %q escapes with only %d forced receives (√n=%d)",
				n, layout, forced, SqrtBound(n))
		}
	}
}
