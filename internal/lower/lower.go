// Package lower reproduces §6, the paper's lower bounds. A lower bound is
// reproduced three ways: (a) the hard instance construction is executable,
// (b) the bound value is computed by the argument of the proof (Boolean
// degree, broadcast fan-in, pigeonhole counting, packing reduction), and
// (c) simulated executions of the repository's algorithms on the hard
// instances are certified to pay at least the bound.
package lower

import (
	"math"

	"lbmm/internal/graph"
	"lbmm/internal/matrix"
)

// ---------------------------------------------------------------------------
// §6.1 — broadcasting and aggregation (Lemma 6.1, Theorem 6.15)

// SumInstance is Lemma 6.1's first construction: BD×BD = US with d = 1. All
// nonzeros of A sit in row 0 (the values a_1..a_n), all nonzeros of B in
// column 0 (ones), and only X_00 = Σ_j a_j is of interest. Any algorithm
// computing it aggregates n values into one computer.
func SumInstance(n int) *graph.Instance {
	var ae, be [][2]int
	for j := 0; j < n; j++ {
		ae = append(ae, [2]int{0, j})
		be = append(be, [2]int{j, 0})
	}
	return graph.NewInstance(1,
		matrix.NewSupport(n, ae),
		matrix.NewSupport(n, be),
		matrix.NewSupport(n, [][2]int{{0, 0}}))
}

// BroadcastInstance is Lemma 6.1's second construction: BD×US = BD with
// d = 1. All nonzeros of A sit in column 0 (ones), B has the single nonzero
// b at (0,0), and the whole first column of X (= b everywhere) is of
// interest: computing it broadcasts b to n computers.
func BroadcastInstance(n int) *graph.Instance {
	var ae, xe [][2]int
	for i := 0; i < n; i++ {
		ae = append(ae, [2]int{i, 0})
		xe = append(xe, [2]int{i, 0})
	}
	return graph.NewInstance(1,
		matrix.NewSupport(n, ae),
		matrix.NewSupport(n, [][2]int{{0, 0}}),
		matrix.NewSupport(n, xe))
}

// BroadcastFanInBound is Lemma 6.13: with communication and silence an
// informed set can at most triple per round, so broadcasting one bit to n
// computers needs at least ⌈log₃ n⌉ rounds.
func BroadcastFanInBound(n int) int {
	t, reach := 0, 1
	for reach < n {
		reach *= 3
		t++
	}
	return t
}

// DegreeBound is Lemma 6.5: computing a Boolean function f needs
// Ω(log deg f) rounds; concretely deg(𝒢(T)) ≤ 2^T gives T ≥ ⌈log₂ deg f⌉.
func DegreeBound(deg int) int {
	if deg <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(deg))))
}

// SumBound is Corollaries 6.8/6.10: computing the sum (or OR) of n values
// needs Ω(log n) rounds, via deg(OR_n) = n.
func SumBound(n int) int { return DegreeBound(n) }

// ---------------------------------------------------------------------------
// §6.1.1 — Boolean degree machinery (executable for small n)

// BooleanDegree computes the degree of the unique multilinear polynomial
// representing f: {0,1}^n → {0,1}, by Möbius inversion over the subset
// lattice: coefficient α_S = Σ_{T ⊆ S} (−1)^{|S\T|} f(T). Exponential in n;
// intended for the n ≤ 20 verification of deg(OR_n) = n and friends.
func BooleanDegree(f func(mask uint32) bool, n int) int {
	size := 1 << n
	coef := make([]int64, size)
	for m := 0; m < size; m++ {
		if f(uint32(m)) {
			coef[m] = 1
		}
	}
	// In-place Möbius transform: after processing bit b, coef[S] holds the
	// alternating sum over the b-processed sublattice.
	for b := 0; b < n; b++ {
		bit := 1 << b
		for m := 0; m < size; m++ {
			if m&bit != 0 {
				coef[m] -= coef[m^bit]
			}
		}
	}
	deg := 0
	for m := 0; m < size; m++ {
		if coef[m] != 0 {
			if p := popcount(uint32(m)); p > deg {
				deg = p
			}
		}
	}
	return deg
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// ---------------------------------------------------------------------------
// §6.3 — routing hardness (Lemmas 6.21, 6.23, 6.25; Theorem 6.27)

// USGMInstance is Lemma 6.21's construction for US×GM = GM with d = 2: A is
// the cyclic two-diagonal band a_{i,i}, a_{i,(i mod n)+1}; B and X̂ are
// dense.
func USGMInstance(n int) *graph.Instance {
	var ae, be, xe [][2]int
	for i := 0; i < n; i++ {
		ae = append(ae, [2]int{i, i}, [2]int{i, (i + 1) % n})
		for j := 0; j < n; j++ {
			be = append(be, [2]int{i, j})
			xe = append(xe, [2]int{i, j})
		}
	}
	return graph.NewInstance(2,
		matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe))
}

// RSCSInstance is Lemma 6.23's construction for RS×CS = GM with d = 1: A is
// one dense column, B one dense row, X̂ dense — a rank-one outer product
// whose every output X_ik = a_i·b_k depends on inputs held by two different
// computers.
func RSCSInstance(n int) *graph.Instance {
	var ae, be, xe [][2]int
	for i := 0; i < n; i++ {
		ae = append(ae, [2]int{i, 0})
		be = append(be, [2]int{0, i})
		for j := 0; j < n; j++ {
			xe = append(xe, [2]int{i, j})
		}
	}
	return graph.NewInstance(1,
		matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe))
}

// SqrtBound is Theorem 6.27's value: the case analysis of Lemmas 6.21/6.23
// forces some computer to receive ⌈√n⌉ values held by other computers, and
// Lemma 6.25's pigeonhole argument turns received values into rounds
// one-for-one.
func SqrtBound(n int) int { return int(math.Ceil(math.Sqrt(float64(n)))) }

// ForcedReceivesRSCS computes, for the RS×CS=GM instance under a given
// assignment of outputs to computers (rows of X̂ to computers owner[i]),
// the Lemma 6.23 case bound: a computer owning outputs from ≥ √n rows of
// one column must learn that many a_i values; a computer owning outputs
// from < √n rows per column spans > √n columns and must learn that many
// b_k values. Either way some computer receives ≥ ⌊√n⌋ foreign values when
// outputs are spread n per computer.
func ForcedReceivesRSCS(n int, ownerOfOutput func(i, k int) int) int {
	// For every computer: rows-per-column histogram.
	colRows := map[[2]int]int{}  // (owner, column) -> #rows owned
	colCount := map[int]int{}    // owner -> #distinct columns touched
	colSeen := map[[2]int]bool{} // (owner, column) seen
	maxForced := 0
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			o := ownerOfOutput(i, k)
			key := [2]int{o, k}
			colRows[key]++
			if !colSeen[key] {
				colSeen[key] = true
				colCount[o]++
			}
		}
	}
	sqrtN := int(math.Sqrt(float64(n)))
	for key, rows := range colRows {
		if rows >= sqrtN && rows-1 > maxForced {
			// Case 1: ≥ √n outputs in one column need that many distinct
			// a_i values; the owner holds at most one of them.
			maxForced = rows - 1
		}
		_ = key
	}
	for o, cols := range colCount {
		if cols >= sqrtN && cols-1 > maxForced {
			// Case 2: outputs spanning ≥ √n columns need that many distinct
			// b_k values; the owner holds at most one.
			maxForced = cols - 1
		}
		_ = o
	}
	return maxForced
}

// ---------------------------------------------------------------------------
// §6.2 — packing reduction (Lemma 6.17, Theorem 6.19)

// PackDense packs a dense m×m product into an AS(1) instance of dimension
// n = m² (Lemma 6.17): the m×m supports sit in the top-left corner of
// m²×m² matrices, so the instance has m² = n nonzeros per matrix — average
// sparsity d = 1.
func PackDense(m int) *graph.Instance {
	n := m * m
	var es [][2]int
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			es = append(es, [2]int{i, j})
		}
	}
	s := matrix.NewSupport(n, es)
	return graph.NewInstance(1, s, s, s)
}

// ReductionRounds is the accounting of Lemma 6.17: an AS algorithm running
// in T(n) rounds on n = m² virtual computers is simulated by m real
// computers in T'(m) = m·T(m²) rounds (each real computer simulates m
// virtual ones, multiplexing their messages round-robin).
func ReductionRounds(m, tOnPacked int) int { return m * tOnPacked }

// ConditionalBound is Theorem 6.19 read forward: if dense MM needs
// Ω(n^λ) rounds then [AS:AS:AS] with d = 1 needs Ω(n^{(λ-1)/2}); with the
// semiring λ = 4/3 this is the paper's conjectured Ω(n^{1/6}).
func ConditionalBound(n int, lambda float64) float64 {
	return math.Pow(float64(n), (lambda-1)/2)
}

// LayoutCandidate names one of the canonical output layouts the
// adversarial-layout search tries.
type LayoutCandidate struct {
	Name  string
	Owner func(i, k int) int
}

// LayoutCandidates returns the canonical support-dependent output layouts
// for an n×n dense output on n computers: by row, by column, by √n×√n
// block, and round-robin.
func LayoutCandidates(n int) []LayoutCandidate {
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	return []LayoutCandidate{
		{"row", func(i, k int) int { return i }},
		{"column", func(i, k int) int { return k }},
		{"block", func(i, k int) int {
			// √n×√n tiles in row-major tile order.
			return ((i/side)*side + k/side) % n
		}},
		{"round-robin", func(i, k int) int { return (i*n + k) % n }},
	}
}

// MinForcedReceivesRSCS evaluates Lemma 6.23's forced-receive bound on
// every canonical layout and returns the minimum — demonstrating that the
// √n hardness is layout-independent ("our lower bounds hold for any fixed
// distribution of input and output", §2), at least across the natural
// choices.
func MinForcedReceivesRSCS(n int) (minForced int, worstLayout string) {
	minForced = math.MaxInt32
	for _, lc := range LayoutCandidates(n) {
		f := ForcedReceivesRSCS(n, lc.Owner)
		if f < minForced {
			minForced = f
			worstLayout = lc.Name
		}
	}
	return minForced, worstLayout
}
