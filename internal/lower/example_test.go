package lower_test

import (
	"fmt"

	"lbmm/internal/lower"
)

// ExampleBooleanDegree computes deg(OR_6) = 6, the fact behind
// Corollary 6.8's Ω(log n) bound.
func ExampleBooleanDegree() {
	deg := lower.BooleanDegree(func(mask uint32) bool { return mask != 0 }, 6)
	fmt.Println("deg(OR_6) =", deg)
	fmt.Println("rounds ≥", lower.DegreeBound(deg))
	// Output:
	// deg(OR_6) = 6
	// rounds ≥ 3
}

// ExampleSumInstance builds Lemma 6.1's aggregation-hard instance.
func ExampleSumInstance() {
	inst := lower.SumInstance(8)
	fmt.Println("triangles:", inst.CountTriangles())
	fmt.Println("proven bound:", lower.SumBound(8), "rounds")
	// Output:
	// triangles: 8
	// proven bound: 3 rounds
}
