package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/dist"
	"lbmm/internal/matrix"
)

// runWorker runs one worker process: it serves distributed-multiply jobs
// until killed. Owns its flags (dispatched before the generic parse).
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address for jobs and peer connections")
	quiet := fs.Bool("q", false, "suppress per-connection logging")
	peerTO := fs.Duration("peer-timeout", 30*time.Second, "how long a job waits for its mesh to form")
	readTO := fs.Duration("read-timeout", 60*time.Second, "per-round barrier deadline")
	parkTTL := fs.Duration("park-ttl", 0, "reap unclaimed parked peer connections after this long (0 = 2x peer-timeout)")
	planCache := fs.Int("plan-cache", 0, "decoded plans kept in the fingerprint-keyed LRU (0 = 16, negative disables)")
	authToken := fs.String("auth-token", "", "shared secret; hellos without it are refused (empty = open)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := dist.WorkerOptions{
		PeerTimeout: *peerTO,
		ReadTimeout: *readTO,
		ParkTTL:     *parkTTL,
		PlanCache:   *planCache,
		AuthToken:   *authToken,
	}
	if !*quiet {
		logger := log.New(os.Stderr, "lbmm worker: ", log.LstdFlags)
		opts.Log = logger.Printf
	}
	return dist.ListenAndServe(*addr, opts)
}

// distRunReport is the JSON summary of one coordinated distributed
// multiplication (schema lbmm.dist_run.v2). CI asserts on .match,
// .net.bytes_sent and .dist.plan_hits.
type distRunReport struct {
	Schema    string `json:"schema"`
	Workers   int    `json:"workers"`
	Workload  string `json:"workload"`
	N         int    `json:"n"`
	D         int    `json:"d"`
	Algorithm string `json:"algorithm"`
	Ring      string `json:"ring"`
	Partition string `json:"partition"`
	Lanes     int    `json:"lanes"`
	Rounds    int    `json:"rounds"`
	Messages  int64  `json:"messages"`
	OutputNNZ int    `json:"output_nnz"`
	Match     bool   `json:"match"`
	WallNS    int64  `json:"wall_ns"`
	// Net sums the transport counters across ranks; PerRankNet keeps each
	// rank's own set (the communication balance the partition achieved);
	// Dist carries the plan-cache counters (plan_hits, plan_misses).
	Net        map[string]int64   `json:"net"`
	PerRankNet []map[string]int64 `json:"per_rank_net"`
	Dist       map[string]int64   `json:"dist"`
}

// runDistRun coordinates one multiplication across real worker processes
// and verifies the merged product against the in-process engine. Owns its
// flags: -workers here is the address list, not serve's pool size.
func runDistRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated worker addresses (rank order)")
	wlName := fs.String("workload", "blocks", "workload (blocks|mixed|us|hotpair|powerlaw)")
	n := fs.Int("n", 48, "matrix dimension / computer count")
	d := fs.Int("d", 4, "sparsity parameter")
	algName := fs.String("alg", "lemma31", "algorithm (auto|theorem42|lemma31)")
	ringName := fs.String("ring", "real", "semiring (boolean|counting|minplus|maxplus|gfp|real)")
	seed := fs.Int64("seed", 1, "value seed (equal seeds replay equal values)")
	partition := fs.String("partition", dist.PartitionModulo, "node ownership map (modulo|balanced)")
	lanes := fs.Int("k", 1, "value-set lanes to batch through one shared mesh walk")
	outPath := fs.String("o", "", "also write the JSON report to this file")
	noVerify := fs.Bool("no-verify", false, "skip the in-process cross-check")
	authToken := fs.String("auth-token", "", "shared secret presented to token-guarded workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*workers, ",")
	if *workers == "" || len(addrs) < 2 {
		return fmt.Errorf("run needs -workers with at least 2 comma-separated addresses")
	}
	if *lanes < 1 {
		return fmt.Errorf("run needs -k of at least 1, got %d", *lanes)
	}

	inst, err := workloadInstance(*wlName, *n, *d)
	if err != nil {
		return err
	}
	r, err := matrix.RingByName(*ringName)
	if err != nil {
		return err
	}
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
		Ring: r, D: *d, Algorithm: *algName, Engine: "compiled",
	})
	if err != nil {
		return err
	}
	as := make([]*matrix.Sparse, *lanes)
	bs := make([]*matrix.Sparse, *lanes)
	for l := range as {
		as[l] = matrix.Random(inst.Ahat, r, *seed+2*int64(l))
		bs[l] = matrix.Random(inst.Bhat, r, *seed+2*int64(l)+1)
	}

	start := time.Now()
	res, err := dist.Run(dist.RunConfig{
		Workers:   addrs,
		Prep:      prep,
		As:        as,
		Bs:        bs,
		N:         inst.Ahat.N,
		Ring:      *ringName,
		Partition: *partition,
		AuthToken: *authToken,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	match := true
	if !*noVerify {
		// Cross-check every lane against its own in-process scalar product:
		// the batched distributed walk must be bit-identical, lane for lane,
		// to k independent multiplications.
		for l := range as {
			want, _, err := prep.Multiply(as[l], bs[l])
			if err != nil {
				return fmt.Errorf("in-process cross-check, lane %d: %w", l, err)
			}
			if !matrix.Equal(res.Xs[l], want) {
				match = false
			}
		}
	}
	perRank := make([]map[string]int64, len(res.PerRankCounters))
	for rk, c := range res.PerRankCounters {
		perRank[rk] = counterGroup(c, "net/")
	}
	report := distRunReport{
		Schema:     "lbmm.dist_run.v2",
		Workers:    len(addrs),
		Workload:   *wlName,
		N:          *n,
		D:          *d,
		Algorithm:  *algName,
		Ring:       *ringName,
		Partition:  *partition,
		Lanes:      *lanes,
		Rounds:     res.Stats.Rounds,
		Messages:   res.Stats.Messages,
		OutputNNZ:  res.X.NNZ(),
		Match:      match,
		WallNS:     wall.Nanoseconds(),
		Net:        counterGroup(res.Counters, "net/"),
		PerRankNet: perRank,
		Dist:       counterGroup(res.Counters, "dist/"),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
	}
	if !match {
		return fmt.Errorf("distributed product does not match the in-process product")
	}
	return nil
}

// counterGroup selects the counters under one namespace prefix and strips
// it for compact JSON keys (net/bytes_sent → bytes_sent).
func counterGroup(counters map[string]int64, prefix string) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range counters {
		if strings.HasPrefix(k, prefix) {
			out[strings.TrimPrefix(k, prefix)] = v
		}
	}
	return out
}
