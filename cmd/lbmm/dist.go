package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/dist"
	"lbmm/internal/matrix"
)

// runWorker runs one worker process: it serves distributed-multiply jobs
// until killed. Owns its flags (dispatched before the generic parse).
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address for jobs and peer connections")
	quiet := fs.Bool("q", false, "suppress per-connection logging")
	peerTO := fs.Duration("peer-timeout", 30*time.Second, "how long a job waits for its mesh to form")
	readTO := fs.Duration("read-timeout", 60*time.Second, "per-round barrier deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := dist.WorkerOptions{PeerTimeout: *peerTO, ReadTimeout: *readTO}
	if !*quiet {
		logger := log.New(os.Stderr, "lbmm worker: ", log.LstdFlags)
		opts.Log = logger.Printf
	}
	return dist.ListenAndServe(*addr, opts)
}

// distRunReport is the JSON summary of one coordinated distributed
// multiplication (schema lbmm.dist_run.v1). CI asserts on .match and
// .net.bytes_sent.
type distRunReport struct {
	Schema    string           `json:"schema"`
	Workers   int              `json:"workers"`
	Workload  string           `json:"workload"`
	N         int              `json:"n"`
	D         int              `json:"d"`
	Algorithm string           `json:"algorithm"`
	Ring      string           `json:"ring"`
	Rounds    int              `json:"rounds"`
	Messages  int64            `json:"messages"`
	OutputNNZ int              `json:"output_nnz"`
	Match     bool             `json:"match"`
	WallNS    int64            `json:"wall_ns"`
	Net       map[string]int64 `json:"net"`
}

// runDistRun coordinates one multiplication across real worker processes
// and verifies the merged product against the in-process engine. Owns its
// flags: -workers here is the address list, not serve's pool size.
func runDistRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated worker addresses (rank order)")
	wlName := fs.String("workload", "blocks", "workload (blocks|mixed|us|hotpair|powerlaw)")
	n := fs.Int("n", 48, "matrix dimension / computer count")
	d := fs.Int("d", 4, "sparsity parameter")
	algName := fs.String("alg", "lemma31", "algorithm (auto|theorem42|lemma31)")
	ringName := fs.String("ring", "real", "semiring (boolean|counting|minplus|maxplus|gfp|real)")
	seed := fs.Int64("seed", 1, "value seed (equal seeds replay equal values)")
	outPath := fs.String("o", "", "also write the JSON report to this file")
	noVerify := fs.Bool("no-verify", false, "skip the in-process cross-check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*workers, ",")
	if *workers == "" || len(addrs) < 2 {
		return fmt.Errorf("run needs -workers with at least 2 comma-separated addresses")
	}

	inst, err := workloadInstance(*wlName, *n, *d)
	if err != nil {
		return err
	}
	r, err := matrix.RingByName(*ringName)
	if err != nil {
		return err
	}
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
		Ring: r, D: *d, Algorithm: *algName, Engine: "compiled",
	})
	if err != nil {
		return err
	}
	a := matrix.Random(inst.Ahat, r, *seed)
	b := matrix.Random(inst.Bhat, r, *seed+1)

	start := time.Now()
	res, err := dist.Run(dist.RunConfig{
		Workers: addrs,
		Prep:    prep,
		A:       a,
		B:       b,
		N:       inst.Ahat.N,
		Ring:    *ringName,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	match := true
	if !*noVerify {
		want, _, err := prep.Multiply(a, b)
		if err != nil {
			return fmt.Errorf("in-process cross-check: %w", err)
		}
		match = matrix.Equal(res.X, want)
	}
	report := distRunReport{
		Schema:    "lbmm.dist_run.v1",
		Workers:   len(addrs),
		Workload:  *wlName,
		N:         *n,
		D:         *d,
		Algorithm: *algName,
		Ring:      *ringName,
		Rounds:    res.Stats.Rounds,
		Messages:  res.Stats.Messages,
		OutputNNZ: res.X.NNZ(),
		Match:     match,
		WallNS:    wall.Nanoseconds(),
		Net:       counterJSON(res.Counters),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
	}
	if !match {
		return fmt.Errorf("distributed product does not match the in-process product")
	}
	return nil
}

// counterJSON strips the net/ prefix for compact JSON keys
// (net/bytes_sent → bytes_sent).
func counterJSON(counters map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(counters))
	for k, v := range counters {
		out[strings.TrimPrefix(k, "net/")] = v
	}
	return out
}
