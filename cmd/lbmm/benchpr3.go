package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// runBenchPR3 measures the prepare-once/multiply-many serving shape on both
// execution engines — the map-backed reference machine and the compiled
// slot-addressed form — and writes the results as JSON (the benchmark smoke
// artifact committed as BENCH_PR3.json).

type benchEngine struct {
	Engine        string  `json:"engine"`
	Iters         int     `json:"iters"`
	TotalSeconds  float64 `json:"total_seconds"`
	NsPerMultiply float64 `json:"ns_per_multiply"`
}

type benchCase struct {
	Name      string        `json:"name"`
	N         int           `json:"n"`
	D         int           `json:"d"`
	Algorithm string        `json:"algorithm"`
	Ring      string        `json:"ring"`
	Rounds    int           `json:"rounds"`
	Engines   []benchEngine `json:"engines"`
	// Speedup is map ns/op divided by compiled ns/op (>1 means the compiled
	// engine is faster).
	Speedup float64 `json:"speedup"`
}

type benchReport struct {
	Schema    string      `json:"schema"`
	GoVersion string      `json:"go_version"`
	Cases     []benchCase `json:"cases"`
}

func runBenchPR3(n, d, iters int, outPath string) error {
	if iters <= 0 {
		iters = 50
	}
	type spec struct {
		name string
		alg  string
		r    ring.Semiring
	}
	specs := []spec{
		{"lemma31/counting", "lemma31", ring.Counting{}},
		{"theorem42/real", "theorem42", ring.Real{}},
		{"auto/minplus", "auto", ring.MinPlus{}},
	}
	report := benchReport{Schema: "lbmm.bench_pr3.v1", GoVersion: runtime.Version()}
	for _, sp := range specs {
		inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 42)
		a := matrix.Random(inst.Ahat, sp.r, 1)
		b := matrix.Random(inst.Bhat, sp.r, 2)
		bc := benchCase{Name: sp.name, N: n, D: d, Algorithm: sp.alg, Ring: sp.r.Name()}
		for _, engine := range []string{"map", "compiled"} {
			prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
				Ring: sp.r, D: d, Algorithm: sp.alg, Engine: engine,
			})
			if err != nil {
				return fmt.Errorf("%s: prepare: %w", sp.name, err)
			}
			// Warm up (pool fill, code paths hot) before timing.
			for i := 0; i < 2; i++ {
				if _, _, err := prep.Multiply(a, b); err != nil {
					return fmt.Errorf("%s/%s: %w", sp.name, engine, err)
				}
			}
			start := time.Now()
			var rounds int
			for i := 0; i < iters; i++ {
				_, rep, err := prep.Multiply(a, b)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", sp.name, engine, err)
				}
				rounds = rep.Rounds
			}
			total := time.Since(start)
			bc.Rounds = rounds
			bc.Engines = append(bc.Engines, benchEngine{
				Engine:        engine,
				Iters:         iters,
				TotalSeconds:  total.Seconds(),
				NsPerMultiply: float64(total.Nanoseconds()) / float64(iters),
			})
		}
		bc.Speedup = bc.Engines[0].NsPerMultiply / bc.Engines[1].NsPerMultiply
		report.Cases = append(report.Cases, bc)
		fmt.Printf("%-20s map %10.0f ns/op   compiled %10.0f ns/op   speedup %.2fx\n",
			sp.name, bc.Engines[0].NsPerMultiply, bc.Engines[1].NsPerMultiply, bc.Speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_PR3.json"
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
