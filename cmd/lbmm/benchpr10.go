package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/stream"
	"lbmm/internal/workload"
)

// runBenchPR10 measures the streaming win: the same k repeated products of
// one hot plan served three ways — sequential scalar POST /v1/multiply (one
// connection round trip per lane, no coalescing), concurrent scalar posts
// against a static batch window, and one lbmm.stream.v1 session against the
// adaptive controller. The JSON artifact is committed as BENCH_PR10.json.

type benchPR10Mode struct {
	Name        string  `json:"name"`
	Lanes       int     `json:"lanes"`
	WallNS      int64   `json:"wall_ns"`
	LanesPerSec float64 `json:"lanes_per_sec"`
	// Batches is how many engine walks served the lanes; MeanBatch the
	// lanes amortized per walk (1.0 = no coalescing happened).
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	// Speedup is this mode's throughput over the sequential scalar baseline.
	Speedup float64 `json:"speedup_vs_scalar"`
}

type benchPR10Report struct {
	Schema    string          `json:"schema"`
	GoVersion string          `json:"go_version"`
	N         int             `json:"n"`
	D         int             `json:"d"`
	Ring      string          `json:"ring"`
	Modes     []benchPR10Mode `json:"modes"`
}

func runBenchPR10(args []string) error {
	fs := flag.NewFlagSet("benchpr10", flag.ExitOnError)
	lanes := fs.Int("lanes", 256, "multiplies per mode")
	n := fs.Int("n", 48, "matrix dimension / computer count")
	d := fs.Int("d", 4, "sparsity parameter")
	reps := fs.Int("reps", 5, "timed repetitions per mode (the fastest is reported)")
	outPath := fs.String("o", "", "report path (default BENCH_PR10.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := ring.Counting{}
	inst := workload.Blocks(*n, *d)
	xhat := inst.Xhat.Entries()
	wms := make([]*service.WireMultiply, *lanes)
	for l := 0; l < *lanes; l++ {
		a := matrix.Random(inst.Ahat, r, int64(2*l+1))
		b := matrix.Random(inst.Bhat, r, int64(2*l+2))
		wms[l] = &service.WireMultiply{
			N: inst.Ahat.N, Ring: "counting",
			A: service.WireEntries(a), B: service.WireEntries(b), Xhat: xhat,
		}
	}

	report := benchPR10Report{
		Schema: "lbmm.bench_pr10.v1", GoVersion: runtime.Version(),
		N: *n, D: *d, Ring: "counting",
	}

	// Each mode gets a fresh server (its own plan cache and counters); one
	// untimed request warms the compiled plan so every mode measures serving,
	// not compilation.
	run := func(name string, cfg service.Config, drive func(base string, ms *obsv.CounterSet) error) error {
		ms := obsv.NewCounterSet()
		cfg.Metrics = ms
		srv := service.NewServer(cfg)
		defer srv.Close()
		mux := http.NewServeMux()
		mux.Handle("/stream/", stream.NewHandler(srv, stream.Config{Metrics: ms}))
		mux.Handle("/", service.NewHandler(srv))
		ts := httptest.NewServer(mux)
		defer ts.Close()
		if err := postScalar(ts.URL, wms[0]); err != nil {
			return fmt.Errorf("%s: warmup: %w", name, err)
		}
		// Best-of-reps: a run of 256 round trips is short enough that one GC
		// or scheduler hiccup swings it, so the minimum is the honest signal.
		var wall time.Duration
		var batches int64
		var mean float64
		for rep := 0; rep < *reps; rep++ {
			runtime.GC() // start each rep from a clean heap, not mid-cycle
			before := ms.Snapshot()
			start := time.Now()
			if err := drive(ts.URL, ms); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			w := time.Since(start)
			after := ms.Snapshot()
			if rep == 0 || w < wall {
				wall = w
				batches = after["batch/size/count"] - before["batch/size/count"]
				served := after["batch/size/sum"] - before["batch/size/sum"]
				mean = 1.0 // scalar path: one walk per lane by construction
				if batches > 0 {
					mean = float64(served) / float64(batches)
				} else {
					batches = int64(*lanes)
				}
			}
		}
		report.Modes = append(report.Modes, benchPR10Mode{
			Name: name, Lanes: *lanes,
			WallNS:      wall.Nanoseconds(),
			LanesPerSec: float64(*lanes) / wall.Seconds(),
			Batches:     batches, MeanBatch: mean,
		})
		return nil
	}

	if err := run("scalar-sequential", service.Config{}, func(base string, _ *obsv.CounterSet) error {
		for l := 0; l < *lanes; l++ {
			if err := postScalar(base, wms[l]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Both batched modes get a window comfortably above the client's
	// inter-submit gap; otherwise every lane looks cold and launches alone,
	// and the walk-amortization being measured never happens.
	const window = 25 * time.Millisecond

	if err := run("static-batch-http", service.Config{BatchSize: 16, BatchDelay: window},
		func(base string, _ *obsv.CounterSet) error {
			var wg sync.WaitGroup
			errs := make(chan error, *lanes)
			slots := make(chan struct{}, 64)
			for l := 0; l < *lanes; l++ {
				wg.Add(1)
				slots <- struct{}{}
				go func(l int) {
					defer wg.Done()
					defer func() { <-slots }()
					if err := postScalar(base, wms[l]); err != nil {
						errs <- err
					}
				}(l)
			}
			wg.Wait()
			close(errs)
			return <-errs
		}); err != nil {
		return err
	}

	if err := run("streaming-adaptive", service.Config{BatchAdaptive: true, BatchSize: 16, BatchDelay: window},
		func(base string, _ *obsv.CounterSet) error {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			c, err := stream.Dial(ctx, base, nil)
			if err != nil {
				return err
			}
			defer c.Close()
			calls := make([]*stream.Call, *lanes)
			for l := 0; l < *lanes; l++ {
				if calls[l], err = c.Submit(fmt.Sprintf("lane-%d", l), wms[l]); err != nil {
					return err
				}
			}
			for l, call := range calls {
				f, err := call.Wait(ctx)
				if err != nil {
					return err
				}
				if f.Type != stream.TypeResult {
					return fmt.Errorf("lane %d: code %d: %s", l, f.Code, f.Error)
				}
			}
			return nil
		}); err != nil {
		return err
	}

	base := report.Modes[0].LanesPerSec
	for i := range report.Modes {
		report.Modes[i].Speedup = report.Modes[i].LanesPerSec / base
		m := report.Modes[i]
		fmt.Printf("%-20s %4d lanes  %10.0f lanes/s  mean batch %5.2f  speedup %.2fx\n",
			m.Name, m.Lanes, m.LanesPerSec, m.MeanBatch, m.Speedup)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "" {
		*outPath = "BENCH_PR10.json"
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *outPath)
	return nil
}

// postScalar issues one POST /v1/multiply exactly like a real client:
// marshal the request, decode the result entries. The streaming client pays
// both costs per lane, so the baseline must too.
func postScalar(base string, wm *service.WireMultiply) error {
	body, err := json.Marshal(wm)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST /v1/multiply: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var out struct {
		X []service.WireEntry `json:"x"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if len(out.X) == 0 {
		return fmt.Errorf("POST /v1/multiply: empty product")
	}
	return nil
}
