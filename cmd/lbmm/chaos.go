package main

import (
	"fmt"

	"lbmm/internal/chaos"
)

// runChaos runs the chaos differential harness (docs/CHAOS.md): randomized
// (structure, ring, fault plan) cases through the map oracle and the
// compiled engine, holding them to identical products fault-free and
// identical typed faults under injection. Exit status is non-zero on any
// differential violation.
func runChaos(cases int, seed int64, verbose bool) error {
	cfg := chaos.DiffConfig{Cases: cases, Seed: seed}
	if verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	res := chaos.Differential(cfg)
	fmt.Println(res.Summary())
	if !res.OK() {
		return fmt.Errorf("chaos: %d differential violation(s)", len(res.Failures))
	}
	return nil
}
