package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// runBenchPR5 measures the dynamic-batching win: per-lane throughput of
// MultiplyBatch at lane counts k ∈ {1, 4, 16} on the compiled engine,
// against the same plan. k = 1 is the unbatched baseline (one lane per
// instruction walk); larger k amortises the walk across lanes. The JSON
// artifact is committed as BENCH_PR5.json.

type benchLanePoint struct {
	Lanes       int     `json:"lanes"`
	Iters       int     `json:"iters"`
	NsPerLane   float64 `json:"ns_per_lane"`
	LanesPerSec float64 `json:"lanes_per_sec"`
	// Speedup is this point's per-lane throughput over the k=1 baseline.
	Speedup float64 `json:"speedup_vs_k1"`
}

type benchBatchCase struct {
	Name      string           `json:"name"`
	N         int              `json:"n"`
	D         int              `json:"d"`
	Algorithm string           `json:"algorithm"`
	Ring      string           `json:"ring"`
	Points    []benchLanePoint `json:"points"`
}

type benchPR5Report struct {
	Schema    string           `json:"schema"`
	GoVersion string           `json:"go_version"`
	Cases     []benchBatchCase `json:"cases"`
}

func runBenchPR5(n, d, iters int, outPath string) error {
	if iters <= 0 {
		iters = 50
	}
	type spec struct {
		name string
		alg  string
		r    ring.Semiring
	}
	specs := []spec{
		{"lemma31/counting", "lemma31", ring.Counting{}},
		{"theorem42/real", "theorem42", ring.Real{}},
	}
	laneCounts := []int{1, 4, 16}
	report := benchPR5Report{Schema: "lbmm.bench_pr5.v1", GoVersion: runtime.Version()}
	for _, sp := range specs {
		inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 42)
		prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
			Ring: sp.r, D: d, Algorithm: sp.alg, Engine: "compiled",
		})
		if err != nil {
			return fmt.Errorf("%s: prepare: %w", sp.name, err)
		}
		bc := benchBatchCase{Name: sp.name, N: n, D: d, Algorithm: sp.alg, Ring: sp.r.Name()}
		for _, k := range laneCounts {
			as := make([]*matrix.Sparse, k)
			bs := make([]*matrix.Sparse, k)
			for l := 0; l < k; l++ {
				as[l] = matrix.Random(inst.Ahat, sp.r, int64(2*l+1))
				bs[l] = matrix.Random(inst.Bhat, sp.r, int64(2*l+2))
			}
			// Warm up (lane-sized exec pools, hot code paths) before timing.
			for i := 0; i < 2; i++ {
				if _, _, err := prep.MultiplyBatch(as, bs, core.ExecOpts{}); err != nil {
					return fmt.Errorf("%s k=%d: %w", sp.name, k, err)
				}
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, _, err := prep.MultiplyBatch(as, bs, core.ExecOpts{}); err != nil {
					return fmt.Errorf("%s k=%d: %w", sp.name, k, err)
				}
			}
			total := time.Since(start)
			lanes := float64(iters * k)
			bc.Points = append(bc.Points, benchLanePoint{
				Lanes:       k,
				Iters:       iters,
				NsPerLane:   float64(total.Nanoseconds()) / lanes,
				LanesPerSec: lanes / total.Seconds(),
			})
		}
		base := bc.Points[0].NsPerLane
		for i := range bc.Points {
			bc.Points[i].Speedup = base / bc.Points[i].NsPerLane
		}
		report.Cases = append(report.Cases, bc)
		for _, pt := range bc.Points {
			fmt.Printf("%-20s k=%-3d %10.0f ns/lane  %12.0f lanes/s  speedup %.2fx\n",
				sp.name, pt.Lanes, pt.NsPerLane, pt.LanesPerSec, pt.Speedup)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_PR5.json"
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
