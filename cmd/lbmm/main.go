// Command lbmm regenerates every table and figure of the paper from live
// low-bandwidth-model simulations, and offers a demo multiplication.
//
// Usage:
//
//	lbmm table1 [-full] [-profile]  measured Table 1 (complexity ladder)
//	lbmm table2 [-full]     measured Table 2 (classification)
//	lbmm table3             Table 3 (semiring parameter schedule)
//	lbmm table4             Table 4 (field parameter schedule)
//	lbmm figure1 [-full]    §1.2 exponent-progress figure
//	lbmm lower [-full]      §6 lower-bound experiments
//	lbmm ablation [-full]   Lemma 3.1 vs naive-routing ablation
//	lbmm support [-full]    supported vs unsupported model (§1.6 baseline)
//	lbmm json [-full]       every experiment's data as JSON
//	lbmm trace [-n N] [-d D] [-alg NAME] [-workload NAME] [-format json|csv|text] [-o FILE]
//	                        structured trace export (schema lbmm.trace.v1)
//	lbmm demo [-n N] [-d D] [-engine compiled|map]
//	                        one multiplication with a full report + timeline
//	lbmm gen  [-n N] [-d D] -o PREFIX   write a generated instance to files
//	lbmm solve -a A.mtx -b B.mtx -x XHAT.mtx [-o OUT.mtx]   solve from files
//	lbmm serve [-addr :8080] [-cache N] [-cache-mb MB] [-workers N] [-queue N] [-deadline D] [-batch K] [-batch-delay D]
//	           [-batch-adaptive] [-stream [-stream-inflight N]] [-store-dir DIR] [-store-mb MB]
//	           [-ring [-join HOST:PORT] [-node-id ID] [-advertise HOST:PORT] [-vnodes V] [-auth-token T]]
//	                        HTTP/JSON multiply server with a prepared-plan
//	                        cache, admission control and dynamic batching
//	                        (docs/SERVICE.md); -batch-adaptive sizes the batch
//	                        window per plan fingerprint by arrival rate and
//	                        -stream mounts the lbmm.stream.v1 session endpoint
//	                        at POST /stream/v1; -store-dir adds a persistent
//	                        plan-store tier for warm restarts (docs/PLANSTORE.md);
//	                        -ring makes the process one shard of a multi-node
//	                        tier routed by plan fingerprint (docs/SHARDING.md),
//	                        -auth-token guards its membership endpoints
//	lbmm stream [-addr URL] [-lanes K] [-workload W] [-n N] [-d D] [-ring R] [-seed S] [-o FILE]
//	                        streaming load client: pipeline K multiplies over
//	                        one lbmm.stream.v1 session, verify every result
//	                        against the local sequential reference, and emit
//	                        a JSON report (schema lbmm.stream_report.v1)
//	lbmm fingerprint [-workload W -n N -d D | -ahat F -bhat F -xhat F] [-ring R] [-alg A]
//	                 [-shards id1,id2,…] [-via HOST:PORT]
//	                        print a structure's plan fingerprint (and owning
//	                        shard) without compiling — the routing debug tool
//	lbmm plans <list|inspect|prewarm|gc|verify> -store-dir DIR [flags]
//	                        inspect and maintain a plan store directory
//	                        (docs/PLANSTORE.md)
//	lbmm benchpr3 [-n N] [-d D] [-iters K] [-o BENCH_PR3.json]
//	                        prepare-once/multiply-many benchmark of the map
//	                        vs compiled execution engines
//	lbmm benchpr5 [-n N] [-d D] [-iters K] [-o BENCH_PR5.json]
//	                        batched vs unbatched throughput at lane counts
//	                        k ∈ {1, 4, 16} on the compiled engine
//	lbmm benchpr8 [-n N] [-d D] [-iters K] [-o BENCH_PR8.json]
//	                        transport-backend benchmark: direct vs loopback
//	                        vs TCP-localhost mesh wall clock and bytes/round
//	lbmm benchpr9 [-n N] [-d D] [-iters K] [-o BENCH_PR9.json]
//	                        partition benchmark: modulo vs load-aware balanced
//	                        node ownership on a skewed (power-law) workload —
//	                        max-per-rank wire bytes under each map
//	lbmm benchpr10 [-lanes K] [-n N] [-d D] [-o BENCH_PR10.json]
//	                        serving-mode benchmark: sequential scalar HTTP vs
//	                        static-batch HTTP vs one adaptive streaming
//	                        session for the same K repeated products
//	lbmm worker [-addr :7070] [-q] [-peer-timeout D] [-read-timeout D] [-park-ttl D] [-plan-cache N] [-auth-token T]
//	                        distributed-multiply worker process: serves jobs
//	                        and forms per-job TCP meshes (docs/DIST.md)
//	lbmm run -workers A1,A2,… [-workload W] [-n N] [-d D] [-alg A] [-ring R] [-seed S] [-partition modulo|balanced] [-k K] [-o FILE] [-no-verify] [-auth-token T]
//	                        coordinate one multiplication across worker
//	                        processes and verify the merged product against
//	                        the in-process engine (docs/DIST.md); -k batches
//	                        K value-set lanes through one shared mesh walk
//	lbmm chaos [-cases N] [-seed S] [-verbose]
//	                        chaos differential harness: randomized fault
//	                        plans through both engines and all transport
//	                        backends (docs/CHAOS.md, docs/DIST.md)
//	lbmm all [-full]        every table/figure in sequence
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lbmm/internal/algo"
	"lbmm/internal/core"
	"lbmm/internal/exper"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/params"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "plans" {
		// plans has sub-subcommands with their own flag sets; dispatch
		// before the generic flag parse below.
		if err := runPlans(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lbmm:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "fingerprint" {
		// fingerprint reuses flag names (-ring for the semiring) that mean
		// different things in the generic set; it owns its flags.
		if err := runFingerprint(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lbmm:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "serve" {
		// serve owns its flags too: its -ring is the shard-mode switch, not
		// a semiring name.
		if err := serveCommand(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "lbmm:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "worker" || cmd == "run" {
		// The distributed commands own their flags: run's -workers is an
		// address list (serve's is a pool size) and its -ring a semiring.
		var err error
		if cmd == "worker" {
			err = runWorker(os.Args[2:])
		} else {
			err = runDistRun(os.Args[2:])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbmm:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "stream" || cmd == "benchpr10" {
		// The streaming client and its benchmark own their flags (-lanes,
		// and stream's -ring is a semiring name).
		var err error
		if cmd == "stream" {
			err = runStreamClient(os.Args[2:])
		} else {
			err = runBenchPR10(os.Args[2:])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbmm:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	full := fs.Bool("full", false, "run the larger (slower) sweep sizes")
	n := fs.Int("n", 64, "demo/gen: matrix dimension / computer count")
	d := fs.Int("d", 4, "demo/gen: sparsity parameter")
	aPath := fs.String("a", "", "solve: path to matrix A")
	bPath := fs.String("b", "", "solve: path to matrix B")
	xPath := fs.String("x", "", "solve: path to output support X̂")
	outPath := fs.String("o", "", "solve: result path / gen: file prefix")
	ringName := fs.String("ring", "", "solve: override the ring (boolean|counting|minplus|maxplus|gfp|real)")
	algName := fs.String("alg", "auto", "trace: algorithm (auto|theorem42|lemma31|trivial|baseline)")
	wlName := fs.String("workload", "blocks", "trace: workload (blocks|mixed|us|hotpair|powerlaw)")
	format := fs.String("format", "json", "trace: output format (json|csv|text)")
	profile := fs.Bool("profile", false, "table1: record per-point phase breakdowns")
	engine := fs.String("engine", "", "demo: execution engine (compiled|map; default compiled)")
	iters := fs.Int("iters", 50, "benchpr3: multiplications per engine")
	cases := fs.Int("cases", 200, "chaos: randomized differential cases")
	seed := fs.Int64("seed", 1, "chaos: harness seed (equal seeds replay equal runs)")
	verbose := fs.Bool("verbose", false, "chaos: log every detected fault")
	_ = fs.Parse(os.Args[2:])

	scale := exper.Quick
	if *full {
		scale = exper.Full
	}

	var err error
	switch cmd {
	case "table1":
		err = runTable1(scale, *profile)
	case "table2":
		err = runTable2(scale)
	case "table3":
		fmt.Println("Table 3 — parameters for Lemma 4.13 (semirings, λ = 4/3)")
		fmt.Print(params.Format(params.TableSemiring()))
	case "table4":
		fmt.Println("Table 4 — parameters for Lemma 4.13 (fields, λ = 1.156671)")
		fmt.Print(params.Format(params.TableField()))
	case "figure1":
		err = runFigure1(scale)
	case "lower":
		err = runLower(scale)
	case "ablation":
		err = runAblation(scale)
	case "support":
		err = runSupport(scale)
	case "trace":
		err = runTrace(*n, *d, *algName, *wlName, *format, *outPath)
	case "json":
		var data []byte
		if data, err = exper.JSON(scale); err == nil {
			fmt.Println(string(data))
		}
	case "demo":
		err = runDemo(*n, *d, *engine)
	case "gen":
		err = runGen(*n, *d, *outPath)
	case "solve":
		err = runSolve(*aPath, *bPath, *xPath, *outPath, *ringName)
	case "benchpr3":
		err = runBenchPR3(*n, *d, *iters, *outPath)
	case "benchpr5":
		err = runBenchPR5(*n, *d, *iters, *outPath)
	case "benchpr8":
		err = runBenchPR8(*n, *d, *iters, *outPath)
	case "benchpr9":
		err = runBenchPR9(*n, *d, *iters, *outPath)
	case "chaos":
		err = runChaos(*cases, *seed, *verbose)
	case "all":
		for _, f := range []func() error{
			func() error { return runTable1(scale, *profile) },
			func() error { return runTable2(scale) },
			func() error { fmt.Print(params.Format(params.TableSemiring())); return nil },
			func() error { fmt.Print(params.Format(params.TableField())); return nil },
			func() error { return runFigure1(scale) },
			func() error { return runLower(scale) },
			func() error { return runAblation(scale) },
			func() error { return runSupport(scale) },
		} {
			if err = f(); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbmm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lbmm <table1|table2|table3|table4|figure1|lower|ablation|support|json|trace|demo|gen|solve|serve|stream|worker|run|fingerprint|plans|benchpr3|benchpr5|benchpr8|benchpr9|benchpr10|chaos|all> [flags]`)
}

func runTable1(scale exper.Scale, profile bool) error {
	var opts []exper.Opt
	if profile {
		opts = append(opts, exper.WithProfiling())
	}
	rows, err := exper.Table1(scale, opts...)
	if err != nil {
		return err
	}
	fmt.Print(exper.FormatTable1(rows, ""))
	return nil
}

func runTable2(scale exper.Scale) error {
	rows, err := exper.Table2(scale)
	if err != nil {
		return err
	}
	fmt.Print(exper.FormatTable2(rows))
	return nil
}

func runFigure1(scale exper.Scale) error {
	rows, err := exper.Table1(scale)
	if err != nil {
		return err
	}
	fmt.Print(exper.Figure1(rows))
	return nil
}

func runLower(scale exper.Scale) error {
	rows, err := exper.LowerBounds(scale)
	if err != nil {
		return err
	}
	if err := exper.CheckLowerRows(rows); err != nil {
		return err
	}
	fmt.Print(exper.FormatLowerBounds(rows))
	return nil
}

func runAblation(scale exper.Scale) error {
	rows, err := exper.AblationLemma31(scale)
	if err != nil {
		return err
	}
	fmt.Print(exper.FormatAblation(rows))
	vrows, err := exper.AblationStrassenVariant(scale)
	if err != nil {
		return err
	}
	fmt.Print(exper.FormatVariantAblation(vrows))
	return nil
}

func runSupport(scale exper.Scale) error {
	rows, err := exper.SupportCost(scale)
	if err != nil {
		return err
	}
	fmt.Print(exper.FormatSupportCost(rows))
	return nil
}

// workloadInstance builds the named generator's instance — the shared
// workload vocabulary of `lbmm trace` and `lbmm plans prewarm`.
func workloadInstance(wlName string, n, d int) (*graph.Instance, error) {
	switch wlName {
	case "blocks":
		return workload.Blocks(n, d), nil
	case "mixed":
		return workload.Mixed(n, d, 42), nil
	case "us":
		return workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 42), nil
	case "hotpair":
		return workload.HotPair(n), nil
	case "powerlaw":
		return workload.PowerLaw(n, d, 42), nil
	}
	return nil, fmt.Errorf("unknown workload %q", wlName)
}

func runTrace(n, d int, algName, wlName, format, outPath string) error {
	inst, err := workloadInstance(wlName, n, d)
	if err != nil {
		return err
	}
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	var alg algo.Algorithm
	switch algName {
	case "auto", "theorem42":
		alg = algo.Theorem42(algo.Theorem42Opts{})
	case "lemma31":
		alg = algo.LemmaOnly
	case "trivial":
		alg = algo.TrivialSparse
	case "baseline":
		alg = algo.BaselineNaiveVirtual(0)
	default:
		return fmt.Errorf("unknown algorithm %q", algName)
	}
	res, got, err := algo.Solve(r, inst, a, b, alg, lbm.WithTrace())
	if err != nil {
		return err
	}
	if err := algo.Verify(got, a, b, inst.Xhat); err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if outPath != "" {
		fh, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	switch format {
	case "json", "csv":
		e := res.Profile.Export()
		e.Meta = map[string]string{
			"algorithm": res.Name,
			"workload":  wlName,
			"instance":  workload.Describe(inst),
		}
		if format == "json" {
			return e.WriteJSON(w)
		}
		return e.WriteCSV(w)
	case "text":
		fmt.Fprintf(w, "%s on %s\n", res.Name, workload.Describe(inst))
		fmt.Fprintf(w, "total %d rounds, %d messages\n\n", res.Rounds, res.Stats.Messages)
		fmt.Fprint(w, res.Profile.Summary())
		fmt.Fprintf(w, "\nround timeline:\n%s", res.Timeline)
		return nil
	default:
		return fmt.Errorf("unknown format %q (want json, csv or text)", format)
	}
}

func runDemo(n, d int, engine string) error {
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 42)
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	fmt.Printf("demo: %s\n", workload.Describe(inst))
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{Ring: r, D: d, Engine: engine})
	if err != nil {
		return err
	}
	x, rep, err := prep.MultiplyTraced(a, b, true)
	if err != nil {
		return err
	}
	if err := algo.Verify(x, a, b, inst.Xhat); err != nil {
		return err
	}
	fmt.Printf("algorithm      %s (engine %s)\n", rep.Name, rep.Engine)
	fmt.Printf("classes        [%v:%v:%v] → band %v\n", rep.Classes[0], rep.Classes[1], rep.Classes[2], rep.Band)
	up, lo := rep.Band.Bounds()
	fmt.Printf("bounds         upper %s, lower %s\n", up, lo)
	fmt.Printf("triangles      %d (residual after phase 1: %d)\n", rep.Triangles, rep.Residual)
	fmt.Printf("rounds         %d (phase1 %d, phase2 %d)\n", rep.Rounds, rep.Phase1Rounds, rep.Phase2Rounds)
	fmt.Printf("messages       %d, peak store %d values/computer\n", rep.Stats.Messages, rep.Stats.PeakStore)
	fmt.Printf("max send/recv  %d / %d per computer\n", rep.Stats.MaxSendLoad(), rep.Stats.MaxRecvLoad())
	fmt.Printf("output nnz     %d (verified against the sequential reference)\n", x.NNZ())
	fmt.Printf("\nround timeline:\n%s", rep.Timeline)
	return nil
}

func runGen(n, d int, prefix string) error {
	if prefix == "" {
		prefix = "instance"
	}
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 42)
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	write := func(name string, f func(*os.File) error) error {
		fh, err := os.Create(name)
		if err != nil {
			return err
		}
		defer fh.Close()
		return f(fh)
	}
	if err := write(prefix+"_a.mtx", func(f *os.File) error { return matrix.WriteSparse(f, a) }); err != nil {
		return err
	}
	if err := write(prefix+"_b.mtx", func(f *os.File) error { return matrix.WriteSparse(f, b) }); err != nil {
		return err
	}
	if err := write(prefix+"_xhat.mtx", func(f *os.File) error { return matrix.WriteSupport(f, inst.Xhat) }); err != nil {
		return err
	}
	fmt.Printf("wrote %s_{a,b,xhat}.mtx  (%s)\n", prefix, workload.Describe(inst))
	return nil
}

func runSolve(aPath, bPath, xPath, outPath, ringName string) error {
	if aPath == "" || bPath == "" || xPath == "" {
		return fmt.Errorf("solve needs -a, -b and -x")
	}
	var override ring.Semiring
	if ringName != "" {
		r, err := matrix.RingByName(ringName)
		if err != nil {
			return err
		}
		override = r
	}
	read := func(name string) (*os.File, error) { return os.Open(name) }
	af, err := read(aPath)
	if err != nil {
		return err
	}
	defer af.Close()
	a, err := matrix.ReadSparse(af, override)
	if err != nil {
		return fmt.Errorf("%s: %w", aPath, err)
	}
	bf, err := read(bPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	b, err := matrix.ReadSparse(bf, a.R)
	if err != nil {
		return fmt.Errorf("%s: %w", bPath, err)
	}
	xf, err := read(xPath)
	if err != nil {
		return err
	}
	defer xf.Close()
	xhat, err := matrix.ReadSupport(xf)
	if err != nil {
		return fmt.Errorf("%s: %w", xPath, err)
	}

	x, rep, err := core.Multiply(a, b, xhat, core.Options{Ring: a.R})
	if err != nil {
		return err
	}
	fmt.Printf("solved n=%d over %s: [%v:%v:%v] band %v, algorithm %s, %d rounds, %d messages\n",
		a.N, a.R.Name(), rep.Classes[0], rep.Classes[1], rep.Classes[2],
		rep.Band, rep.Name, rep.Rounds, rep.Stats.Messages)
	if outPath != "" {
		fh, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := matrix.WriteSparse(fh, x); err != nil {
			return err
		}
		fmt.Printf("result written to %s (%d entries)\n", outPath, x.NNZ())
	}
	return nil
}
