package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/shard"
)

// runFingerprint drives `lbmm fingerprint`: print the core.Fingerprint of a
// structure + ring + algorithm without compiling anything — the routing
// debug tool for the shard tier (docs/SHARDING.md). The structure comes
// from a named workload generator (-workload/-n/-d) or from support files
// (-ahat/-bhat/-xhat). Ownership can be resolved two ways:
//
//	-shards id1,id2,…   compute the owner offline over a hypothetical ring
//	-via host:port      ask a live ring node (GET /shard/v1/owner)
func runFingerprint(args []string) error {
	fs := flag.NewFlagSet("fingerprint", flag.ExitOnError)
	n := fs.Int("n", 64, "workload mode: matrix dimension")
	d := fs.Int("d", 4, "sparsity parameter (0 = derive from the structure)")
	wlName := fs.String("workload", "blocks", "workload (blocks|mixed|us|hotpair|powerlaw)")
	ahatPath := fs.String("ahat", "", "file mode: Â support file (.mtx pattern)")
	bhatPath := fs.String("bhat", "", "file mode: B̂ support file")
	xhatPath := fs.String("xhat", "", "file mode: X̂ support file")
	ringName := fs.String("ring", "counting", "ring (boolean|counting|minplus|maxplus|gfp|real)")
	algName := fs.String("alg", "auto", "algorithm (auto|theorem42|lemma31)")
	shards := fs.String("shards", "", "comma-separated shard IDs: also print the owning shard")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard for -shards (0 = default)")
	via := fs.String("via", "", "host:port of a live ring node: ask it who owns the fingerprint")
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("fingerprint: unexpected argument %q", fs.Arg(0))
	}

	var ahat, bhat, xhat *matrix.Support
	filesGiven := *ahatPath != "" || *bhatPath != "" || *xhatPath != ""
	if filesGiven {
		if *ahatPath == "" || *bhatPath == "" || *xhatPath == "" {
			return fmt.Errorf("fingerprint: file mode needs all of -ahat, -bhat and -xhat")
		}
		var err error
		if ahat, err = readSupportFile(*ahatPath); err != nil {
			return err
		}
		if bhat, err = readSupportFile(*bhatPath); err != nil {
			return err
		}
		if xhat, err = readSupportFile(*xhatPath); err != nil {
			return err
		}
	} else {
		inst, err := workloadInstance(*wlName, *n, *d)
		if err != nil {
			return err
		}
		ahat, bhat, xhat = inst.Ahat, inst.Bhat, inst.Xhat
	}

	r, err := matrix.RingByName(*ringName)
	if err != nil {
		return err
	}
	opts := core.Options{Ring: r, D: *d, Algorithm: *algName}
	fp, err := core.Fingerprint(ahat, bhat, xhat, opts)
	if err != nil {
		return err
	}
	fmt.Printf("fingerprint  %s\n", fp)
	fmt.Printf("structure    n=%d nnz(Â)=%d nnz(B̂)=%d nnz(X̂)=%d\n", ahat.N, ahat.NNZ, bhat.NNZ, xhat.NNZ)
	fmt.Printf("options      ring=%s alg=%s d=%d (resolved %d)\n",
		r.Name(), *algName, *d, core.ResolveD(*d, ahat, bhat, xhat))

	if *shards != "" {
		var members []shard.Member
		for _, id := range strings.Split(*shards, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				members = append(members, shard.Member{ID: id})
			}
		}
		if len(members) == 0 {
			return fmt.Errorf("fingerprint: -shards lists no IDs")
		}
		ring := shard.BuildRing(members, *vnodes)
		owner, _ := ring.Owner(fp)
		fmt.Printf("owner        %s (of %d shards", owner.ID, len(members))
		for _, m := range members {
			fmt.Printf(", %s:%d‰", m.ID, ring.OwnedPermille(m.ID))
		}
		fmt.Printf(")\n")
	}
	if *via != "" {
		resp, err := http.Get("http://" + *via + "/shard/v1/owner?fp=" + fp)
		if err != nil {
			return fmt.Errorf("fingerprint: asking %s: %w", *via, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fingerprint: %s answered %s", *via, resp.Status)
		}
		var owner struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&owner); err != nil {
			return err
		}
		fmt.Printf("owner        %s at %s (live view of %s)\n", owner.ID, owner.Addr, *via)
	}
	return nil
}

func readSupportFile(path string) (*matrix.Support, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := matrix.ReadSupport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
