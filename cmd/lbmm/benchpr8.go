package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/dist"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// runBenchPR8 prices the transport seam on the Table 1 workloads: the same
// prepared plan executed on the nil-transport fast path, through the
// loopback seam, and across a three-participant localhost TCP mesh. The
// interesting numbers are the seam's overhead (loopback vs direct), the
// socket cost per round (tcp vs loopback), and the wire amplification
// (framed bytes vs the model's 8-byte-per-message volume). The JSON
// artifact is committed as BENCH_PR8.json.

type benchTransportCase struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	D         int    `json:"d"`
	Algorithm string `json:"algorithm"`
	Ring      string `json:"ring"`
	Iters     int    `json:"iters"`
	Rounds    int    `json:"rounds"`
	// NetRounds counts the rounds that touch the transport (rounds with at
	// least one real message); the remainder are free local-copy rounds.
	NetRounds int `json:"net_rounds"`
	// Per-multiply wall clock on each backend.
	DirectNS   float64 `json:"direct_ns"`
	LoopbackNS float64 `json:"loopback_ns"`
	TCPNS      float64 `json:"tcp_ns"`
	// ModelBytesPerRound is the model-level payload volume per network
	// round (Stats.RoundBytes mean); WireBytesPerRound the framed TCP bytes
	// actually written per network round, summed over the three endpoints.
	ModelBytesPerRound float64 `json:"model_bytes_per_round"`
	WireBytesPerRound  float64 `json:"wire_bytes_per_round"`
	// TCPRoundNS is the mean barrier latency per network round.
	TCPRoundNS float64 `json:"tcp_round_ns"`
}

type benchPR8Report struct {
	Schema    string               `json:"schema"`
	GoVersion string               `json:"go_version"`
	Workers   int                  `json:"workers"`
	Cases     []benchTransportCase `json:"cases"`
}

func runBenchPR8(n, d, iters int, outPath string) error {
	if iters <= 0 {
		iters = 20
	}
	type spec struct {
		name string
		alg  string
		r    ring.Semiring
	}
	specs := []spec{
		{"lemma31/counting", "lemma31", ring.Counting{}},
		{"theorem42/real", "theorem42", ring.Real{}},
	}
	const workers = 3
	report := benchPR8Report{Schema: "lbmm.bench_pr8.v1", GoVersion: runtime.Version(), Workers: workers}
	for _, sp := range specs {
		inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 42)
		prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
			Ring: sp.r, D: d, Algorithm: sp.alg, Engine: "compiled",
		})
		if err != nil {
			return fmt.Errorf("%s: prepare: %w", sp.name, err)
		}
		a := matrix.Random(inst.Ahat, sp.r, 1)
		b := matrix.Random(inst.Bhat, sp.r, 2)

		direct, stats, err := timeBackend(iters, func() (lbm.Stats, error) {
			_, rep, err := prep.Multiply(a, b)
			if err != nil {
				return lbm.Stats{}, err
			}
			return rep.Stats, nil
		})
		if err != nil {
			return fmt.Errorf("%s: direct: %w", sp.name, err)
		}
		loopback, _, err := timeBackend(iters, func() (lbm.Stats, error) {
			_, rep, err := prep.MultiplyOpts(a, b, core.ExecOpts{Transport: &lbm.Loopback{}})
			if err != nil {
				return lbm.Stats{}, err
			}
			return rep.Stats, nil
		})
		if err != nil {
			return fmt.Errorf("%s: loopback: %w", sp.name, err)
		}

		meshes, stop, err := dist.NewLocalMesh(workers)
		if err != nil {
			return err
		}
		tcp, err := timeMesh(iters, prep, a, b, meshes)
		if err != nil {
			stop()
			return fmt.Errorf("%s: tcp: %w", sp.name, err)
		}
		var wireBytes, roundNS int64
		for _, m := range meshes {
			wireBytes += m.Counters().Get(dist.CounterBytesSent)
			roundNS += m.Counters().Get(dist.CounterRoundNS)
		}
		stop()

		var modelBytes int64
		for _, rb := range stats.RoundBytes {
			modelBytes += rb
		}
		netRounds := len(stats.RoundBytes)
		totalNetRounds := float64(iters * netRounds)
		bc := benchTransportCase{
			Name:       sp.name,
			N:          n,
			D:          d,
			Algorithm:  sp.alg,
			Ring:       sp.r.Name(),
			Iters:      iters,
			Rounds:     stats.Rounds,
			NetRounds:  netRounds,
			DirectNS:   direct,
			LoopbackNS: loopback,
			TCPNS:      tcp,
		}
		if netRounds > 0 {
			bc.ModelBytesPerRound = float64(modelBytes) / float64(netRounds)
			bc.WireBytesPerRound = float64(wireBytes) / totalNetRounds
			// Every endpoint measures the same barrier concurrently; charge
			// the mean, not the triple-counted sum.
			bc.TCPRoundNS = float64(roundNS) / float64(workers) / totalNetRounds
		}
		report.Cases = append(report.Cases, bc)
		fmt.Printf("%-20s direct %9.0f ns  loopback %9.0f ns  tcp %10.0f ns  (%d net rounds, %.0f model B/round, %.0f wire B/round)\n",
			sp.name, bc.DirectNS, bc.LoopbackNS, bc.TCPNS, bc.NetRounds, bc.ModelBytesPerRound, bc.WireBytesPerRound)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_PR8.json"
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// timeBackend times iters runs of one backend after one warm-up, returning
// mean ns per multiply and the last run's stats.
func timeBackend(iters int, run func() (lbm.Stats, error)) (float64, lbm.Stats, error) {
	stats, err := run()
	if err != nil {
		return 0, stats, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if stats, err = run(); err != nil {
			return 0, stats, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), stats, nil
}

// timeMesh times iters partitioned runs over an established local mesh: all
// ranks execute concurrently, so one iteration costs one barrier-synced
// walk, like a real deployment.
func timeMesh(iters int, prep *core.Prepared, a, b *matrix.Sparse, meshes []*dist.Mesh) (float64, error) {
	runOnce := func() error {
		errs := make([]error, len(meshes))
		var wg sync.WaitGroup
		for rk := range meshes {
			wg.Add(1)
			go func(rk int) {
				defer wg.Done()
				_, _, errs[rk] = prep.MultiplyOpts(a, b, core.ExecOpts{Transport: meshes[rk]})
			}(rk)
		}
		wg.Wait()
		for rk, err := range errs {
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk, err)
			}
		}
		return nil
	}
	if err := runOnce(); err != nil {
		return 0, err
	}
	// Drop the warm-up's wire bytes so per-round numbers cover the timed
	// iterations only.
	for _, m := range meshes {
		m.Counters().Set(dist.CounterBytesSent, 0)
		m.Counters().Set(dist.CounterRoundNS, 0)
		m.Counters().Set(dist.CounterFlushes, 0)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := runOnce(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}
