package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/dist"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// runBenchPR9 prices the partition axis on a skewed workload: the same
// prepared plan executed across a localhost TCP mesh under the modulo
// node-ownership map and under the load-aware balanced table
// (dist.BalancedTable over the compiled plan's per-node loads). The modulo
// map balances node counts; on power-law structures the per-node
// communication is concentrated on hub nodes, so the interesting number is
// the max-per-rank wire bytes — the straggler that paces every barrier —
// under each map. Products must be identical. The JSON artifact is
// committed as BENCH_PR9.json.

// benchPartitionSide is one partition strategy's measured half of a case.
type benchPartitionSide struct {
	Partition string `json:"partition"`
	// PerRankLoad is the compile-time per-rank model load (send+recv
	// volume folded through the table, dist.RankLoads) the balancer bins;
	// PerRankWireBytes the framed TCP bytes each rank actually wrote.
	PerRankLoad      []int64 `json:"per_rank_load"`
	MaxRankLoad      int64   `json:"max_rank_load"`
	PerRankWireBytes []int64 `json:"per_rank_wire_bytes"`
	MaxRankWireBytes int64   `json:"max_rank_wire_bytes"`
	WallNS           float64 `json:"wall_ns"`
	Match            bool    `json:"match"`
}

type benchPR9Case struct {
	Name      string             `json:"name"`
	Workload  string             `json:"workload"`
	N         int                `json:"n"`
	D         int                `json:"d"`
	Algorithm string             `json:"algorithm"`
	Ring      string             `json:"ring"`
	Lanes     int                `json:"lanes"`
	Iters     int                `json:"iters"`
	Modulo    benchPartitionSide `json:"modulo"`
	Balanced  benchPartitionSide `json:"balanced"`
	// MaxWireRatio is modulo's max-per-rank wire bytes over balanced's —
	// above 1 the balanced table relieved the straggler rank.
	MaxWireRatio float64 `json:"max_wire_ratio"`
}

type benchPR9Report struct {
	Schema    string         `json:"schema"`
	GoVersion string         `json:"go_version"`
	Workers   int            `json:"workers"`
	Cases     []benchPR9Case `json:"cases"`
}

func runBenchPR9(n, d, iters int, outPath string) error {
	if iters <= 0 {
		iters = 10
	}
	type spec struct {
		name  string
		wl    string
		alg   string
		r     ring.Semiring
		lanes int
	}
	specs := []spec{
		{"powerlaw/lemma31/counting/k1", "powerlaw", "lemma31", ring.Counting{}, 1},
		{"powerlaw/lemma31/counting/k16", "powerlaw", "lemma31", ring.Counting{}, 16},
		{"powerlaw/theorem42/real/k1", "powerlaw", "theorem42", ring.Real{}, 1},
		{"powerlaw/theorem42/real/k16", "powerlaw", "theorem42", ring.Real{}, 16},
	}
	const workers = 3
	report := benchPR9Report{Schema: "lbmm.bench_pr9.v1", GoVersion: runtime.Version(), Workers: workers}
	for _, sp := range specs {
		inst := workload.PowerLaw(n, d, 42)
		prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
			Ring: sp.r, D: d, Algorithm: sp.alg, Engine: "compiled",
		})
		if err != nil {
			return fmt.Errorf("%s: prepare: %w", sp.name, err)
		}
		send, recv := prep.NodeLoads()
		if send == nil {
			return fmt.Errorf("%s: compiled plan reports no load profile", sp.name)
		}
		as := make([]*matrix.Sparse, sp.lanes)
		bs := make([]*matrix.Sparse, sp.lanes)
		wants := make([]*matrix.Sparse, sp.lanes)
		for l := range as {
			as[l] = matrix.Random(inst.Ahat, sp.r, int64(2*l+1))
			bs[l] = matrix.Random(inst.Bhat, sp.r, int64(2*l+2))
			if wants[l], _, err = prep.Multiply(as[l], bs[l]); err != nil {
				return fmt.Errorf("%s: reference lane %d: %w", sp.name, l, err)
			}
		}

		bc := benchPR9Case{
			Name:      sp.name,
			Workload:  sp.wl,
			N:         n,
			D:         d,
			Algorithm: sp.alg,
			Ring:      sp.r.Name(),
			Lanes:     sp.lanes,
			Iters:     iters,
		}
		balanced := dist.BalancedTable(send, recv, workers)
		sides := []struct {
			out   *benchPartitionSide
			name  string
			table []uint16
		}{
			{&bc.Modulo, dist.PartitionModulo, nil},
			{&bc.Balanced, dist.PartitionBalanced, balanced},
		}
		for _, side := range sides {
			ps, err := benchPartition(prep, as, bs, wants, side.table, workers, iters)
			if err != nil {
				return fmt.Errorf("%s: %s: %w", sp.name, side.name, err)
			}
			ps.Partition = side.name
			ps.PerRankLoad = dist.RankLoads(side.table, send, recv, workers)
			ps.MaxRankLoad = maxOf(ps.PerRankLoad)
			*side.out = ps
		}
		if bc.Balanced.MaxRankWireBytes > 0 {
			bc.MaxWireRatio = float64(bc.Modulo.MaxRankWireBytes) / float64(bc.Balanced.MaxRankWireBytes)
		}
		report.Cases = append(report.Cases, bc)
		fmt.Printf("%-30s modulo max %8d B/rank (load %6d)   balanced max %8d B/rank (load %6d)   ratio %.3f  match=%v/%v\n",
			sp.name, bc.Modulo.MaxRankWireBytes, bc.Modulo.MaxRankLoad,
			bc.Balanced.MaxRankWireBytes, bc.Balanced.MaxRankLoad,
			bc.MaxWireRatio, bc.Modulo.Match, bc.Balanced.Match)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_PR9.json"
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchPartition measures one partition strategy: a warm-up run whose merged
// per-lane products are verified against wants, then iters timed concurrent
// walks whose per-rank wire bytes are collected.
func benchPartition(prep *core.Prepared, as, bs, wants []*matrix.Sparse, table []uint16, workers, iters int) (benchPartitionSide, error) {
	var ps benchPartitionSide
	meshes, stop, err := dist.NewLocalMeshTable(workers, table)
	if err != nil {
		return ps, err
	}
	defer stop()
	got, err := meshMultiply(prep, as, bs, meshes)
	if err != nil {
		return ps, err
	}
	ps.Match = true
	for l := range got {
		if !matrix.Equal(got[l], wants[l]) {
			ps.Match = false
		}
	}
	for _, m := range meshes {
		m.Counters().Set(dist.CounterBytesSent, 0)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := meshMultiply(prep, as, bs, meshes); err != nil {
			return ps, err
		}
	}
	ps.WallNS = float64(time.Since(start).Nanoseconds()) / float64(iters)
	ps.PerRankWireBytes = make([]int64, workers)
	for rk, m := range meshes {
		ps.PerRankWireBytes[rk] = m.Counters().Get(dist.CounterBytesSent) / int64(iters)
	}
	ps.MaxRankWireBytes = maxOf(ps.PerRankWireBytes)
	return ps, nil
}

// meshMultiply runs one partitioned (possibly batched) multiplication on
// every rank of an established mesh concurrently and merges the disjoint
// partial products lane for lane.
func meshMultiply(prep *core.Prepared, as, bs []*matrix.Sparse, meshes []*dist.Mesh) ([]*matrix.Sparse, error) {
	outs := make([][]*matrix.Sparse, len(meshes))
	errs := make([]error, len(meshes))
	var wg sync.WaitGroup
	for rk := range meshes {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			if len(as) == 1 {
				var x *matrix.Sparse
				x, _, errs[rk] = prep.MultiplyOpts(as[0], bs[0], core.ExecOpts{Transport: meshes[rk]})
				outs[rk] = []*matrix.Sparse{x}
				return
			}
			outs[rk], _, errs[rk] = prep.MultiplyBatch(as, bs, core.ExecOpts{Transport: meshes[rk]})
		}(rk)
	}
	wg.Wait()
	for rk, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", rk, err)
		}
	}
	merged := make([]*matrix.Sparse, len(as))
	for l := range merged {
		merged[l] = matrix.NewSparse(as[0].N, as[0].R)
	}
	for _, xs := range outs {
		for l, x := range xs {
			for i, row := range x.Rows {
				for _, c := range row {
					merged[l].Set(i, int(c.Col), c.Val)
				}
			}
		}
	}
	return merged, nil
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
