package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/planstore"
)

// runPlans drives the plan-store maintenance subcommands (docs/PLANSTORE.md):
//
//	lbmm plans list     -store-dir DIR
//	lbmm plans inspect  -store-dir DIR -fp FINGERPRINT
//	lbmm plans prewarm  -store-dir DIR [-workload W] [-n N] [-d D] [-ring R] [-alg A] [-o REQ.json]
//	lbmm plans gc       -store-dir DIR -store-mb MB
//	lbmm plans verify   -store-dir DIR [-fix]
//
// Every subcommand operates directly on the store directory; it is safe to
// run them against a directory a live server is using, since the store's
// writes are atomic and readers only ever see complete entries.
func runPlans(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("plans needs a subcommand: list, inspect, prewarm, gc or verify")
	}
	sub := args[0]
	fs := flag.NewFlagSet("plans "+sub, flag.ExitOnError)
	dir := fs.String("store-dir", "", "plan store directory (required)")
	mb := fs.Int("store-mb", 0, "size budget in MiB enforced by gc (0 = unbounded)")
	fp := fs.String("fp", "", "inspect: fingerprint of the entry to inspect")
	fix := fs.Bool("fix", false, "verify: quarantine entries that fail validation")
	n := fs.Int("n", 64, "prewarm: matrix dimension")
	d := fs.Int("d", 4, "prewarm: sparsity parameter")
	wlName := fs.String("workload", "blocks", "prewarm: workload (blocks|mixed|us|hotpair|powerlaw)")
	ringName := fs.String("ring", "counting", "prewarm: ring (boolean|counting|minplus|maxplus|gfp|real)")
	algName := fs.String("alg", "auto", "prewarm: algorithm (auto|theorem42|lemma31)")
	outPath := fs.String("o", "", "prewarm: also write a matching /v1/multiply request as JSON")
	_ = fs.Parse(args[1:])
	if fs.NArg() > 0 {
		return fmt.Errorf("plans %s: unexpected argument %q", sub, fs.Arg(0))
	}
	if *dir == "" {
		return fmt.Errorf("plans %s: -store-dir is required", sub)
	}
	st, err := planstore.Open(*dir, int64(*mb)<<20, nil)
	if err != nil {
		return err
	}

	switch sub {
	case "list":
		return plansList(st)
	case "inspect":
		return plansInspect(st, *fp)
	case "prewarm":
		return plansPrewarm(st, *wlName, *n, *d, *ringName, *algName, *outPath)
	case "gc":
		return plansGC(st, *mb)
	case "verify":
		return plansVerify(st, *fix)
	}
	return fmt.Errorf("plans: unknown subcommand %q (want list, inspect, prewarm, gc or verify)", sub)
}

func plansList(st *planstore.Store) error {
	entries, err := st.List()
	if err != nil {
		return err
	}
	var total int64
	for _, e := range entries {
		fmt.Printf("%s  %8d bytes  %s\n", e.Fingerprint, e.Bytes, e.ModTime.UTC().Format("2006-01-02T15:04:05Z"))
		total += e.Bytes
	}
	fmt.Printf("%d entries, %d bytes\n", len(entries), total)
	q, err := st.Quarantined()
	if err != nil {
		return err
	}
	if len(q) > 0 {
		fmt.Printf("%d quarantined:\n", len(q))
		for _, name := range q {
			fmt.Printf("  %s\n", name)
		}
	}
	return nil
}

func plansInspect(st *planstore.Store, fp string) error {
	if fp == "" {
		return fmt.Errorf("plans inspect: -fp is required")
	}
	p, err := st.Get(fp)
	if err != nil {
		return err
	}
	up, lo := p.Band.Bounds()
	fmt.Printf("fingerprint    %s\n", fp)
	fmt.Printf("algorithm      %s\n", p.Algorithm)
	fmt.Printf("classes        [%v:%v:%v] → band %v\n", p.Classes[0], p.Classes[1], p.Classes[2], p.Band)
	fmt.Printf("bounds         upper %s, lower %s\n", up, lo)
	fmt.Printf("d              %d\n", p.D)
	fmt.Printf("compiled size  %d bytes\n", p.CompiledBytes())
	return nil
}

func plansPrewarm(st *planstore.Store, wlName string, n, d int, ringName, algName, outPath string) error {
	inst, err := workloadInstance(wlName, n, d)
	if err != nil {
		return err
	}
	r, err := matrix.RingByName(ringName)
	if err != nil {
		return err
	}
	opts := core.Options{Ring: r, D: d, Algorithm: algName}
	fp, err := core.Fingerprint(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		return err
	}
	p, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		return err
	}
	if err := st.Put(fp, p); err != nil {
		return err
	}
	fmt.Printf("prewarmed %s (%s n=%d d=%d over %s, alg %s, %d compiled bytes)\n",
		fp, wlName, n, d, r.Name(), p.Algorithm, p.CompiledBytes())

	if outPath == "" {
		return nil
	}
	// Emit a /v1/multiply request whose structure fingerprints to the entry
	// just written, so `curl -d @REQ.json` against a server sharing this
	// store directory is served from disk without compiling.
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	cells := func(m *matrix.Sparse) [][3]float64 {
		out := make([][3]float64, 0, m.NNZ())
		for i, row := range m.Rows {
			for _, c := range row {
				out = append(out, [3]float64{float64(i), float64(c.Col), c.Val})
			}
		}
		return out
	}
	xhat := make([][2]int, 0, inst.Xhat.NNZ)
	for i, row := range inst.Xhat.Rows {
		for _, j := range row {
			xhat = append(xhat, [2]int{i, int(j)})
		}
	}
	req := struct {
		N         int          `json:"n"`
		Ring      string       `json:"ring"`
		Algorithm string       `json:"algorithm"`
		D         int          `json:"d"`
		A         [][3]float64 `json:"a"`
		B         [][3]float64 `json:"b"`
		Xhat      [][2]int     `json:"xhat"`
	}{N: inst.N, Ring: r.Name(), Algorithm: p.Algorithm, D: d, A: cells(a), B: cells(b), Xhat: xhat}
	data, err := json.MarshalIndent(&req, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("request written to %s\n", outPath)
	return nil
}

func plansGC(st *planstore.Store, mb int) error {
	if mb <= 0 {
		return fmt.Errorf("plans gc: -store-mb must be positive (it is the budget to enforce)")
	}
	evicted, freed, err := st.GC()
	if err != nil {
		return err
	}
	fmt.Printf("gc: evicted %d entries, freed %d bytes (budget %d MiB)\n", evicted, freed, mb)
	return nil
}

func plansVerify(st *planstore.Store, fix bool) error {
	issues, err := st.Verify(fix)
	if err != nil {
		return err
	}
	if len(issues) == 0 {
		fmt.Println("verify: all entries decode and match their content address")
		return nil
	}
	for _, is := range issues {
		fmt.Printf("BAD %s: %v\n", is.Fingerprint, is.Err)
	}
	action := "left in place (rerun with -fix to quarantine)"
	if fix {
		action = "quarantined"
	}
	return fmt.Errorf("verify: %d bad entries %s", len(issues), action)
}
