package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbmm/internal/obsv"
	"lbmm/internal/planstore"
	"lbmm/internal/service"
	"lbmm/internal/shard"
	"lbmm/internal/stream"
)

// serveCommand parses `lbmm serve` flags. serve owns its flag set (like
// plans and fingerprint) because -ring here is the shard-mode switch, while
// the generic set uses -ring for a semiring name.
func serveCommand(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var o serveOpts
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.cacheSize, "cache", 0, "max cached prepared plans (0 = default 128)")
	fs.IntVar(&o.cacheMB, "cache-mb", 0, "max total compiled size of cached plans in MiB (0 = unbounded)")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.queueDepth, "queue", 0, "admission queue depth (0 = 4×workers)")
	fs.DurationVar(&o.deadline, "deadline", 0, "default per-request deadline (0 = 30s)")
	fs.IntVar(&o.batchSize, "batch", 0, "max lanes coalesced per batch (0 or 1 = batching off)")
	fs.DurationVar(&o.batchDelay, "batch-delay", 0, "max time a request waits for lane-mates (0 = 2ms when batching)")
	fs.BoolVar(&o.batchAdaptive, "batch-adaptive", false, "adapt the batch window per plan fingerprint by arrival rate (docs/SERVICE.md; implies -batch 16 when unset)")
	fs.BoolVar(&o.stream, "stream", false, "mount the lbmm.stream.v1 session endpoint at POST /stream/v1 (docs/SERVICE.md)")
	fs.IntVar(&o.streamInflight, "stream-inflight", 0, "per-session lane cap for streaming sessions (0 = default 512)")
	fs.StringVar(&o.storeDir, "store-dir", "", "persistent plan store directory (empty = no disk tier)")
	fs.IntVar(&o.storeMB, "store-mb", 0, "plan store size budget in MiB (0 = unbounded)")
	fs.BoolVar(&o.ring, "ring", false, "run as one shard of a multi-node ring (docs/SHARDING.md)")
	fs.StringVar(&o.nodeID, "node-id", "", "stable shard identity (default: advertised address)")
	fs.StringVar(&o.advertise, "advertise", "", "host:port peers dial (default: -addr, localhost when unqualified)")
	fs.StringVar(&o.join, "join", "", "host:port of any existing ring member to join")
	fs.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per shard on the ownership ring (0 = default 64)")
	fs.StringVar(&o.authToken, "auth-token", "", "shared secret guarding /shard/v1/ membership changes (empty = open)")
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	return runServe(o)
}

// serveOpts carries the `lbmm serve` flags.
type serveOpts struct {
	addr       string
	cacheSize  int
	cacheMB    int
	workers    int
	queueDepth int
	deadline   time.Duration
	batchSize  int
	batchDelay time.Duration

	// Streaming + adaptive-batching flags (docs/SERVICE.md).
	batchAdaptive  bool
	stream         bool
	streamInflight int

	storeDir string
	storeMB  int

	// Shard-tier flags (docs/SHARDING.md).
	ring      bool
	nodeID    string
	advertise string
	join      string
	vnodes    int
	authToken string
}

// runServe starts the HTTP serving layer: a prepared-plan cache with
// admission control and (optionally) dynamic batching in front, speaking
// the JSON API of docs/SERVICE.md. When storeDir is non-empty the cache
// gains a persistent second tier (docs/PLANSTORE.md): plans compiled by
// this process are written back to disk and survive a restart. With -ring
// the process becomes one shard of a multi-node tier (docs/SHARDING.md):
// requests are routed to their owning shard by plan fingerprint, and
// membership is maintained by alive-checks over /shard/v1/.
func runServe(o serveOpts) error {
	// One shared counter set so GET /metrics reports the store/* and
	// shard/* counters beside the serve/* ones.
	ms := obsv.NewCounterSet()
	cfg := service.Config{
		CacheSize:     o.cacheSize,
		CacheBytes:    int64(o.cacheMB) << 20,
		Workers:       o.workers,
		QueueDepth:    o.queueDepth,
		Deadline:      o.deadline,
		BatchSize:     o.batchSize,
		BatchDelay:    o.batchDelay,
		BatchAdaptive: o.batchAdaptive,
		Metrics:       ms,
	}
	if o.storeDir != "" {
		st, err := planstore.Open(o.storeDir, int64(o.storeMB)<<20, ms)
		if err != nil {
			return fmt.Errorf("open plan store: %w", err)
		}
		cfg.Store = st
	}
	// Validate up front so a bad flag is a friendly CLI error, not a panic
	// out of NewServer.
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv := service.NewServer(cfg)
	eff := srv.Config()
	fmt.Printf("lbmm serve: listening on %s (cache %d plans / %d MiB, %d workers, queue %d, deadline %s)\n",
		o.addr, eff.CacheSize, eff.CacheBytes>>20, eff.Workers, eff.QueueDepth, eff.Deadline)
	if eff.BatchSize > 1 {
		mode := "static window"
		if eff.BatchAdaptive {
			mode = "adaptive per-fingerprint window"
		}
		fmt.Printf("  batching: up to %d lanes per plan, max delay %s (%s)\n", eff.BatchSize, eff.BatchDelay, mode)
	}
	if eff.Store != nil {
		budget := "unbounded"
		if o.storeMB > 0 {
			budget = fmt.Sprintf("%d MiB", o.storeMB)
		}
		fmt.Printf("  plan store: %s (budget %s)\n", eff.Store.Dir(), budget)
	}
	handler := http.Handler(service.NewHandler(srv))

	if o.ring {
		advertise := o.advertise
		if advertise == "" {
			advertise = o.addr
			if strings.HasPrefix(advertise, ":") {
				advertise = "127.0.0.1" + advertise
			}
		}
		node := shard.NewNode(shard.Config{
			ID:        o.nodeID,
			Addr:      advertise,
			VNodes:    o.vnodes,
			Metrics:   ms,
			Logf:      log.Printf,
			AuthToken: o.authToken,
		})
		router := shard.NewRouter(node, handler, nil, ms)
		handler = router.Handler()
		if err := node.Start(o.join); err != nil {
			return err
		}
		fmt.Printf("  shard: node %s at %s", node.Self().ID, node.Self().Addr)
		if o.join != "" {
			fmt.Printf(", joined ring via %s", o.join)
		} else {
			fmt.Printf(", new ring")
		}
		fmt.Printf(" (/shard/v1/ protocol, %d members in view)\n", len(node.View().Members))

		// A graceful stop announces the departure so survivors rebalance
		// immediately; a SIGKILL exercises the alive-check path instead.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			node.Leave()
			node.Stop()
			srv.Close()
			os.Exit(0)
		}()
	}

	if o.stream {
		// The session endpoint bypasses the shard router on purpose: a stream
		// session is a point-to-point pipeline against this node's coalescer.
		sh := stream.NewHandler(srv, stream.Config{MaxInflight: o.streamInflight, Metrics: ms})
		outer := http.NewServeMux()
		outer.Handle("/stream/", sh)
		outer.Handle("/", handler)
		handler = outer
		fmt.Printf("  streaming: POST /stream/v1 (%s, per-session inflight cap %d)\n",
			stream.Proto, streamInflightOrDefault(o.streamInflight))
	}

	fmt.Printf("  POST /v1/multiply  POST /v1/multiply/batch  POST /v1/prepare  POST /v1/classify  GET /healthz  GET /metrics\n")
	// ReadHeaderTimeout reaps peers that dial and never speak, IdleTimeout
	// bounds kept-alive connections between requests. Deliberately no global
	// Read/WriteTimeout: a streaming session is one long-lived request, and
	// the stream layer enforces its own hello/idle/write deadlines.
	hs := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.ListenAndServe()
}

// streamInflightOrDefault mirrors stream.Config's default for the banner.
func streamInflightOrDefault(v int) int {
	if v <= 0 {
		return 512
	}
	return v
}
