package main

import (
	"fmt"
	"net/http"
	"time"

	"lbmm/internal/obsv"
	"lbmm/internal/planstore"
	"lbmm/internal/service"
)

// runServe starts the HTTP serving layer: a prepared-plan cache with
// admission control and (optionally) dynamic batching in front, speaking
// the JSON API of docs/SERVICE.md. When storeDir is non-empty the cache
// gains a persistent second tier (docs/PLANSTORE.md): plans compiled by
// this process are written back to disk and survive a restart.
func runServe(addr string, cacheSize, cacheMB, workers, queueDepth int, deadline time.Duration, batchSize int, batchDelay time.Duration, storeDir string, storeMB int) error {
	cfg := service.Config{
		CacheSize:  cacheSize,
		CacheBytes: int64(cacheMB) << 20,
		Workers:    workers,
		QueueDepth: queueDepth,
		Deadline:   deadline,
		BatchSize:  batchSize,
		BatchDelay: batchDelay,
	}
	if storeDir != "" {
		// One shared counter set so GET /metrics reports the store/*
		// counters beside the serve/* ones.
		ms := obsv.NewCounterSet()
		st, err := planstore.Open(storeDir, int64(storeMB)<<20, ms)
		if err != nil {
			return fmt.Errorf("open plan store: %w", err)
		}
		cfg.Metrics = ms
		cfg.Store = st
	}
	// Validate up front so a bad flag is a friendly CLI error, not a panic
	// out of NewServer.
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv := service.NewServer(cfg)
	eff := srv.Config()
	fmt.Printf("lbmm serve: listening on %s (cache %d plans / %d MiB, %d workers, queue %d, deadline %s)\n",
		addr, eff.CacheSize, eff.CacheBytes>>20, eff.Workers, eff.QueueDepth, eff.Deadline)
	if eff.BatchSize > 1 {
		fmt.Printf("  batching: up to %d lanes per plan, max delay %s\n", eff.BatchSize, eff.BatchDelay)
	}
	if eff.Store != nil {
		budget := "unbounded"
		if storeMB > 0 {
			budget = fmt.Sprintf("%d MiB", storeMB)
		}
		fmt.Printf("  plan store: %s (budget %s)\n", eff.Store.Dir(), budget)
	}
	fmt.Printf("  POST /v1/multiply  POST /v1/multiply/batch  POST /v1/prepare  POST /v1/classify  GET /healthz  GET /metrics\n")
	return http.ListenAndServe(addr, service.NewHandler(srv))
}
