package main

import (
	"fmt"
	"net/http"
	"time"

	"lbmm/internal/service"
)

// runServe starts the HTTP serving layer: a prepared-plan cache with
// admission control in front, speaking the JSON API of docs/SERVICE.md.
func runServe(addr string, cacheSize, cacheMB, workers, queueDepth int, deadline time.Duration) error {
	srv := service.NewServer(service.Config{
		CacheSize:  cacheSize,
		CacheBytes: int64(cacheMB) << 20,
		Workers:    workers,
		QueueDepth: queueDepth,
		Deadline:   deadline,
	})
	cfg := srv.Config()
	fmt.Printf("lbmm serve: listening on %s (cache %d plans / %d MiB, %d workers, queue %d, deadline %s)\n",
		addr, cfg.CacheSize, cfg.CacheBytes>>20, cfg.Workers, cfg.QueueDepth, cfg.Deadline)
	fmt.Printf("  POST /v1/multiply  POST /v1/prepare  POST /v1/classify  GET /healthz  GET /metrics\n")
	return http.ListenAndServe(addr, service.NewHandler(srv))
}
