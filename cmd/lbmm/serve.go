package main

import (
	"fmt"
	"net/http"
	"time"

	"lbmm/internal/service"
)

// runServe starts the HTTP serving layer: a prepared-plan cache with
// admission control and (optionally) dynamic batching in front, speaking
// the JSON API of docs/SERVICE.md.
func runServe(addr string, cacheSize, cacheMB, workers, queueDepth int, deadline time.Duration, batchSize int, batchDelay time.Duration) error {
	cfg := service.Config{
		CacheSize:  cacheSize,
		CacheBytes: int64(cacheMB) << 20,
		Workers:    workers,
		QueueDepth: queueDepth,
		Deadline:   deadline,
		BatchSize:  batchSize,
		BatchDelay: batchDelay,
	}
	// Validate up front so a bad flag is a friendly CLI error, not a panic
	// out of NewServer.
	if err := cfg.Validate(); err != nil {
		return err
	}
	srv := service.NewServer(cfg)
	eff := srv.Config()
	fmt.Printf("lbmm serve: listening on %s (cache %d plans / %d MiB, %d workers, queue %d, deadline %s)\n",
		addr, eff.CacheSize, eff.CacheBytes>>20, eff.Workers, eff.QueueDepth, eff.Deadline)
	if eff.BatchSize > 1 {
		fmt.Printf("  batching: up to %d lanes per plan, max delay %s\n", eff.BatchSize, eff.BatchDelay)
	}
	fmt.Printf("  POST /v1/multiply  POST /v1/multiply/batch  POST /v1/prepare  POST /v1/classify  GET /healthz  GET /metrics\n")
	return http.ListenAndServe(addr, service.NewHandler(srv))
}
