package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"lbmm/internal/matrix"
	"lbmm/internal/service"
	"lbmm/internal/stream"
)

// streamReport is the JSON summary of one `lbmm stream` load run (schema
// lbmm.stream_report.v1). CI asserts on .correct, .lanes and the embedded
// server metrics (batch/size histogram, stream/goroutines_hwm).
type streamReport struct {
	Schema   string `json:"schema"`
	Addr     string `json:"addr"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Ring     string `json:"ring"`
	Lanes    int    `json:"lanes"`
	// Correct counts lanes whose streamed product matched the local
	// sequential reference; Errored counts error frames (any code).
	Correct       int     `json:"correct"`
	Errored       int     `json:"errored"`
	TicketsUnique bool    `json:"tickets_unique"`
	WallNS        int64   `json:"wall_ns"`
	LanesPerSec   float64 `json:"lanes_per_sec"`
	// Server is the target's GET /metrics snapshot taken after the drain —
	// the batch/control/stream counters the soak drill asserts on.
	Server map[string]int64 `json:"server"`
}

// runStreamClient drives one lbmm.stream.v1 session as a load generator: it
// pipelines -lanes multiplies over a single connection, verifies every
// result against the local sequential reference, and emits a JSON report.
// Owns its flags (-ring is a semiring name here, as in run/trace).
func runStreamClient(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serving base URL (host:port accepted)")
	lanes := fs.Int("lanes", 256, "multiplies to pipeline over the one session")
	wlName := fs.String("workload", "blocks", "workload (blocks|mixed|us|hotpair|powerlaw)")
	n := fs.Int("n", 48, "matrix dimension / computer count")
	d := fs.Int("d", 4, "sparsity parameter")
	ringName := fs.String("ring", "counting", "semiring (boolean|counting|minplus|maxplus|gfp|real)")
	seed := fs.Int64("seed", 1, "value seed (lane l uses seed+2l, seed+2l+1)")
	outPath := fs.String("o", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lanes < 1 {
		return fmt.Errorf("stream needs -lanes of at least 1, got %d", *lanes)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	inst, err := workloadInstance(*wlName, *n, *d)
	if err != nil {
		return err
	}
	r, err := matrix.RingByName(*ringName)
	if err != nil {
		return err
	}
	xhat := inst.Xhat.Entries()
	as := make([]*matrix.Sparse, *lanes)
	bs := make([]*matrix.Sparse, *lanes)
	for l := range as {
		as[l] = matrix.Random(inst.Ahat, r, *seed+2*int64(l))
		bs[l] = matrix.Random(inst.Bhat, r, *seed+2*int64(l)+1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	client, err := stream.Dial(ctx, base, nil)
	if err != nil {
		return err
	}
	defer client.Close()

	// Pipeline every lane, pacing only against the server's advertised
	// inflight cap so a big -lanes never trips session backpressure.
	window := client.MaxInflight()
	if window < 1 || window > *lanes {
		window = *lanes
	}
	slots := make(chan struct{}, window)
	outcomes := make([]stream.Frame, *lanes)
	tickets := make([]uint64, *lanes)
	var wg sync.WaitGroup
	start := time.Now()
	for l := 0; l < *lanes; l++ {
		slots <- struct{}{}
		call, err := client.Submit(fmt.Sprintf("lane-%d", l), &service.WireMultiply{
			N:    inst.Ahat.N,
			Ring: *ringName,
			A:    service.WireEntries(as[l]),
			B:    service.WireEntries(bs[l]),
			Xhat: xhat,
		})
		if err != nil {
			return fmt.Errorf("lane %d: %w", l, err)
		}
		wg.Add(1)
		go func(l int, call *stream.Call) {
			defer wg.Done()
			defer func() { <-slots }()
			f, err := call.Wait(ctx)
			if err != nil {
				f = stream.Frame{Type: stream.TypeError, Code: 499, Error: err.Error()}
			}
			outcomes[l] = f
			tickets[l] = call.Ticket()
		}(l, call)
	}
	wg.Wait()
	wall := time.Since(start)

	report := streamReport{
		Schema:        "lbmm.stream_report.v1",
		Addr:          base,
		Workload:      *wlName,
		N:             *n,
		D:             *d,
		Ring:          *ringName,
		Lanes:         *lanes,
		TicketsUnique: true,
		WallNS:        wall.Nanoseconds(),
		LanesPerSec:   float64(*lanes) / wall.Seconds(),
	}
	seen := map[uint64]bool{}
	for l, f := range outcomes {
		if f.Type != stream.TypeResult {
			report.Errored++
			fmt.Fprintf(os.Stderr, "lane %d: code %d: %s\n", l, f.Code, f.Error)
			continue
		}
		got := matrix.NewSparse(inst.Ahat.N, r)
		for _, e := range f.X {
			got.Set(int(e[0]), int(e[1]), e[2])
		}
		if matrix.Equal(got, matrix.MulReference(as[l], bs[l], inst.Xhat)) {
			report.Correct++
		} else {
			fmt.Fprintf(os.Stderr, "lane %d: streamed product does not match the local reference\n", l)
		}
		if seen[tickets[l]] || tickets[l] == 0 {
			report.TicketsUnique = false
		}
		seen[tickets[l]] = true
	}
	report.Server = scrapeMetrics(base)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
	}
	if report.Correct != *lanes {
		return fmt.Errorf("stream: %d/%d lanes correct", report.Correct, *lanes)
	}
	return nil
}

// scrapeMetrics snapshots the target's GET /metrics; best-effort (nil on
// any failure — the report is still useful without the server-side view).
func scrapeMetrics(base string) map[string]int64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var m map[string]int64
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return nil
	}
	return m
}
