// Benchmarks regenerating every table and figure of the paper. Each bench
// drives the same harness as `cmd/lbmm` (package internal/exper) and
// reports the *measured model rounds* as custom metrics next to the host
// wall-clock: the rounds are the reproduced quantity, the ns/op is merely
// the cost of simulating them.
//
//	go test -bench=. -benchmem
//
// Individual experiments:
//
//	go test -bench BenchmarkTable1 -benchtime 1x
//	go test -bench BenchmarkFigure1 -benchtime 1x
package lbmm_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	lbmpkg "lbmm/internal/lbm"
	"lbmm/internal/routing"

	"lbmm/internal/algo"
	"lbmm/internal/core"
	"lbmm/internal/exper"
	"lbmm/internal/graph"
	"lbmm/internal/matrix"
	"lbmm/internal/params"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/workload"
)

// metricName flattens a series name into a Go bench metric suffix.
func metricName(s string) string {
	s = strings.ToLower(s)
	for _, cut := range []string{" ", "[", "]", "(", ")", ",", "²", "³"} {
		s = strings.ReplaceAll(s, cut, "_")
	}
	return strings.Trim(s, "_")
}

// BenchmarkTable1 regenerates Table 1: the full complexity ladder, one
// sub-benchmark per row, reporting rounds at the largest swept size and the
// fitted exponent.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table1(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable1(rows, ""))
			for _, s := range rows {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(float64(last.Rounds), "rounds_"+metricName(s.Name))
				b.ReportMetric(s.FittedExponent(), "expo_"+metricName(s.Name))
			}
		}
	}
}

// BenchmarkTable2 regenerates the classification table: all 20 class
// multisets solved and verified.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table2(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatTable2(rows))
			total := 0
			for _, r := range rows {
				total += r.Rounds
			}
			b.ReportMetric(float64(total), "rounds_total")
		}
	}
}

// BenchmarkTable3 and BenchmarkTable4 regenerate the parameter schedules
// (pure computation; benchmarked for completeness of the per-table index).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps := params.TableSemiring()
		if len(steps) != 4 {
			b.Fatalf("table 3 has %d steps", len(steps))
		}
		if i == 0 {
			b.Log("\n" + params.Format(steps))
			b.ReportMetric(steps[len(steps)-1].Beta, "final_beta")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps := params.TableField()
		if len(steps) != 4 {
			b.Fatalf("table 4 has %d steps", len(steps))
		}
		if i == 0 {
			b.Log("\n" + params.Format(steps))
			b.ReportMetric(steps[len(steps)-1].Beta, "final_beta")
		}
	}
}

// BenchmarkFigure1 regenerates the §1.2 exponent-progress figure, with
// measured tail exponents attached.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table1(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.Figure1(rows))
		}
	}
}

// BenchmarkLemma31 is the key ablation: Lemma 3.1's routing vs the naive
// duplication routing on hot-pair instances.
func BenchmarkLemma31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.AblationLemma31(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatAblation(rows))
			for _, r := range rows {
				if r.Name == "hot pair" {
					b.ReportMetric(float64(r.BaselineRounds)/float64(r.LemmaRounds),
						fmt.Sprintf("speedup_n%d", r.N))
				}
			}
		}
	}
}

// BenchmarkLowerLog and BenchmarkLowerSqrt regenerate the §6 experiments.
func BenchmarkLowerLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.LowerBounds(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if err := exper.CheckLowerRows(rows); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatLowerBounds(rows))
			for _, r := range rows {
				if strings.HasPrefix(r.Name, "sum") {
					b.ReportMetric(float64(r.Rounds), fmt.Sprintf("sum_rounds_n%d", r.N))
				}
			}
		}
	}
}

func BenchmarkLowerSqrt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.LowerBounds(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if strings.HasPrefix(r.Name, "outer") {
					b.ReportMetric(float64(r.MaxRecv), fmt.Sprintf("forced_recv_n%d", r.N))
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the individual algorithms (host wall-clock of the
// simulation; useful for tracking the simulator's own performance).

func benchAlgorithm(b *testing.B, inst *graph.Instance, r ring.Semiring, alg algo.Algorithm) {
	a := matrix.Random(inst.Ahat, r, 1)
	bm := matrix.Random(inst.Bhat, r, 2)
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, _, err := algo.Solve(r, inst, a, bm, alg)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "model_rounds")
}

func BenchmarkAlgoTrivial(b *testing.B) {
	benchAlgorithm(b, workload.Blocks(128, 8), ring.Boolean{}, algo.TrivialSparse)
}

func BenchmarkAlgoLemma31(b *testing.B) {
	benchAlgorithm(b, workload.Blocks(128, 8), ring.Boolean{}, algo.LemmaOnly)
}

func BenchmarkAlgoTheorem42Semiring(b *testing.B) {
	benchAlgorithm(b, workload.Blocks(128, 8), ring.Boolean{}, algo.Theorem42(algo.Theorem42Opts{}))
}

func BenchmarkAlgoTheorem42Field(b *testing.B) {
	benchAlgorithm(b, workload.Blocks(128, 8), ring.NewGFp(1009), algo.Theorem42(algo.Theorem42Opts{}))
}

func BenchmarkAlgoBaseline(b *testing.B) {
	benchAlgorithm(b, workload.Blocks(128, 8), ring.Boolean{}, algo.BaselineNaiveVirtual(0))
}

// BenchmarkSupportCost measures the supported-vs-unsupported gap (§1.6).
func BenchmarkSupportCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.SupportCost(exper.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exper.FormatSupportCost(rows))
			for _, r := range rows {
				b.ReportMetric(float64(r.UnsupportedRounds)/float64(r.SupportedRounds),
					fmt.Sprintf("overhead_n%d", r.N))
			}
		}
	}
}

// BenchmarkSimulatorRound measures the simulator's own throughput: one
// n-message permutation round (host wall-clock per executed model round).
func BenchmarkSimulatorRound(b *testing.B) {
	n := 4096
	m := lbmpkg.New(n, ring.Counting{})
	r := make(lbmpkg.Round, n)
	for i := 0; i < n; i++ {
		m.Put(lbmpkg.NodeID(i), lbmpkg.AKey(int32(i), 0), 1)
		r[i] = lbmpkg.Send{
			From: lbmpkg.NodeID(i), To: lbmpkg.NodeID((i + 1) % n),
			Src: lbmpkg.AKey(int32(i), 0), Dst: lbmpkg.TKey(int32(i), 0, 0), Op: lbmpkg.OpSet,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunRound(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "messages/round")
}

// BenchmarkColoring compares the two edge-colouring backends' planning cost.
func BenchmarkColoring(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var msgs []routing.Msg
	n := 512
	for i := 0; i < 16*n; i++ {
		from := lbmpkg.NodeID(rng.Intn(n))
		to := lbmpkg.NodeID(rng.Intn(n))
		if from == to {
			continue
		}
		msgs = append(msgs, routing.Msg{From: from, To: to,
			Src: lbmpkg.TKey(int32(i), 0, 0), Dst: lbmpkg.TKey(int32(i), 1, 0)})
	}
	b.Run("euler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := routing.Schedule(msgs, routing.Euler)
			if i == 0 {
				b.ReportMetric(float64(p.NumRounds()), "rounds")
			}
		}
	})
	b.Run("konig", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := routing.Schedule(msgs, routing.Konig)
			if i == 0 {
				b.ReportMetric(float64(p.NumRounds()), "rounds")
			}
		}
	})
}

// BenchmarkPreparedMultiply measures the amortized host cost of repeated
// products with a fixed structure (planning hoisted out of the loop).
func BenchmarkPreparedMultiply(b *testing.B) {
	r := ring.NewGFp(1009)
	inst := workload.Blocks(128, 8)
	p, err := algo.PrepareTheorem42(r, inst, algo.Theorem42Opts{})
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random(inst.Ahat, r, 1)
	bm := matrix.Random(inst.Bhat, r, 2)
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, res, err := p.Multiply(a, bm)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "model_rounds")
}

// BenchmarkServeCacheHit measures the serving layer's steady state: every
// request after the first finds its prepared plan in the cache, so ns/op is
// plan execution plus cache lookup (no planning).
func BenchmarkServeCacheHit(b *testing.B) {
	srv := service.NewServer(service.Config{CacheSize: 16})
	ctx := context.Background()
	r := ring.Counting{}
	inst := workload.Blocks(64, 4)
	a := matrix.Random(inst.Ahat, r, 1)
	bm := matrix.Random(inst.Bhat, r, 2)
	req := &service.MultiplyRequest{A: a, B: bm, Xhat: inst.Xhat, Options: core.Options{Ring: r}}
	if _, err := srv.Multiply(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Multiply(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
	b.ReportMetric(float64(srv.Metrics()[service.MetricCacheHits]), "cache_hits")
}

// BenchmarkServeCacheMiss measures the cold path: a capacity-1 cache with
// two alternating structures means every request misses, evicts, and pays a
// full compilation.
func BenchmarkServeCacheMiss(b *testing.B) {
	srv := service.NewServer(service.Config{CacheSize: 1})
	ctx := context.Background()
	r := ring.Counting{}
	insts := []*graph.Instance{workload.Blocks(64, 4), workload.BlocksShifted(64, 4)}
	reqs := make([]*service.MultiplyRequest, len(insts))
	for i, inst := range insts {
		reqs[i] = &service.MultiplyRequest{
			A:    matrix.Random(inst.Ahat, r, int64(2*i+1)),
			B:    matrix.Random(inst.Bhat, r, int64(2*i+2)),
			Xhat: inst.Xhat, Options: core.Options{Ring: r},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Multiply(ctx, reqs[i%2])
		if err != nil {
			b.Fatal(err)
		}
		if resp.CacheHit {
			b.Fatal("expected a cache miss")
		}
	}
	b.ReportMetric(float64(srv.Metrics()[service.MetricCacheMisses]), "cache_misses")
}
