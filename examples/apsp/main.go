// Bounded-hop shortest paths via tropical matrix multiplication: the
// min-plus distance product D_{t+1} = D_t ⊗ W on a bounded-degree weighted
// graph is a [US:US:US]-flavoured sparse multiplication per hop — matrix
// powers over a semiring are exactly where the paper's semiring algorithms
// (no subtraction available!) are needed.
//
//	go run ./examples/apsp
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

const (
	n    = 96
	deg  = 3
	hops = 3
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Random weighted graph with max degree ≤ deg.
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	degree := make([]int, n)
	for attempts := 0; attempts < 8*n; attempts++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || degree[u] >= deg || degree[v] >= deg {
			continue
		}
		edges = append(edges, edge{u, v, float64(1 + rng.Intn(9))})
		degree[u]++
		degree[v]++
	}

	// W over MinPlus: weights on edges, One (=0) on the diagonal so that
	// D ⊗ W keeps shorter earlier paths.
	mp := ring.MinPlus{}
	w := matrix.NewSparse(n, mp)
	for i := 0; i < n; i++ {
		w.Set(i, i, mp.One())
	}
	for _, e := range edges {
		w.Set(e.u, e.v, e.w)
		w.Set(e.v, e.u, e.w)
	}

	dist := w.Clone()
	totalRounds := 0
	for t := 1; t < hops; t++ {
		// The supported model knows the next support in advance: the
		// boolean product of the current supports.
		xhat := supportProduct(dist.Support(), w.Support())
		next, rep, err := core.Multiply(dist, w, xhat, core.Options{Ring: mp})
		if err != nil {
			log.Fatal(err)
		}
		totalRounds += rep.Rounds
		fmt.Printf("hop %d: support %d entries, band %v, %d rounds (algorithm %s)\n",
			t+1, xhat.NNZ, rep.Band, rep.Rounds, rep.Name)
		dist = next
	}

	// Verify against local bounded-hop Bellman-Ford.
	ref := bellmanFord(w)
	bad := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := dist.Get(i, j)
			if got != ref[i][j] {
				bad++
			}
		}
	}
	if bad != 0 {
		log.Fatalf("%d distance mismatches", bad)
	}
	fmt.Printf("\nall ≤%d-hop distances verified against Bellman–Ford\n", hops)
	fmt.Printf("total: %d communication rounds across %d distributed products on %d computers\n",
		totalRounds, hops-1, n)
}

// supportProduct returns the boolean product support of two supports.
func supportProduct(a, b *matrix.Support) *matrix.Support {
	var es [][2]int
	for i, row := range a.Rows {
		seen := map[int32]bool{}
		for _, j := range row {
			for _, k := range b.Rows[j] {
				if !seen[k] {
					seen[k] = true
					es = append(es, [2]int{i, int(k)})
				}
			}
		}
	}
	return matrix.NewSupport(a.N, es)
}

// bellmanFord computes exact ≤hops-hop distances sequentially.
func bellmanFord(w *matrix.Sparse) [][]ring.Value {
	dist := make([][]ring.Value, n)
	for i := range dist {
		dist[i] = make([]ring.Value, n)
		for j := range dist[i] {
			dist[i][j] = math.Inf(1)
		}
	}
	for i := 0; i < n; i++ {
		for _, c := range w.Rows[i] {
			dist[i][c.Col] = c.Val
		}
	}
	for t := 1; t < hops; t++ {
		next := make([][]ring.Value, n)
		for i := range next {
			next[i] = append([]ring.Value(nil), dist[i]...)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.IsInf(dist[i][j], 1) {
					continue
				}
				for _, c := range w.Rows[j] {
					if cand := dist[i][j] + c.Val; cand < next[i][c.Col] {
						next[i][c.Col] = cand
					}
				}
			}
		}
		dist = next
	}
	return dist
}
