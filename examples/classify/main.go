// Classification explorer: Table 2 live. For each combination of sparsity
// classes it generates a representative instance, classifies it, runs the
// dispatcher's algorithm, and prints the measured cost next to the paper's
// bounds.
//
//	go run ./examples/classify [A B X]
//
// e.g. `go run ./examples/classify US BD AS`; with no arguments the full
// 20-row table is produced.
package main

import (
	"fmt"
	"log"
	"os"

	"lbmm/internal/core"
	"lbmm/internal/exper"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func main() {
	if len(os.Args) == 4 {
		one(os.Args[1], os.Args[2], os.Args[3])
		return
	}
	rows, err := exper.Table2(exper.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exper.FormatTable2(rows))
}

func one(sa, sb, sx string) {
	ca, err := matrix.ParseClass(sa)
	must(err)
	cb, err := matrix.ParseClass(sb)
	must(err)
	cx, err := matrix.ParseClass(sx)
	must(err)

	n, d := 48, 3
	inst := workload.Instance(ca, cb, cx, n, d, 1)
	fmt.Println("instance:", workload.Describe(inst))

	band := core.Classify(ca, cb, cx)
	up, lo := band.Bounds()
	fmt.Printf("Table 2 band: %v\n  upper bound: %s\n  lower bound: %s\n", band, up, lo)

	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	_, rep, err := core.Multiply(a, b, inst.Xhat, core.Options{Ring: r, D: d})
	must(err)
	fmt.Printf("measured: algorithm %s, %d rounds, %d messages (verified)\n",
		rep.Name, rep.Rounds, rep.Stats.Messages)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
