// PageRank on a bounded-degree graph: power iteration where every step is
// a distributed sparse matrix-vector product. The supported model shines
// here — the structure never changes, so the routing plans are prepared
// once and every iteration costs exactly the same number of rounds.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	"lbmm/internal/triangle"
)

func main() {
	const (
		n       = 200
		degree  = 5
		damping = 0.85
		iters   = 20
	)
	g := triangle.RandomBoundedDegree(n, degree, 13)
	fmt.Printf("graph: n=%d maxdeg=%d edges=%d\n", g.N, g.MaxDegree(), g.NumEdges())

	ranks, total, perIter, err := triangle.PageRank(g, damping, iters)
	if err != nil {
		log.Fatal(err)
	}
	local := triangle.PageRankLocal(g, damping, iters)
	fmt.Printf("verified against sequential power iteration (max error %.2e)\n",
		triangle.MaxRankError(ranks, local))
	fmt.Printf("%d iterations × %d rounds each = %d total communication rounds\n",
		iters, perIter, total)

	type vr struct {
		v int
		r float64
	}
	var order []vr
	for v, r := range ranks {
		order = append(order, vr{v, r})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].r > order[b].r })
	fmt.Println("\ntop 5 vertices by rank:")
	for _, x := range order[:5] {
		fmt.Printf("  vertex %3d  rank %.5f\n", x.v, x.r)
	}
}
