// Serve: drive the serving layer through its direct Go API — the same
// Server behind `lbmm serve`, without HTTP. The first request for a
// structure compiles and caches its plan; every later request with the same
// structure (any values) is a cache hit that only pays plan execution, and
// the model guarantees it costs the identical number of rounds.
//
//	go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/workload"
)

func main() {
	srv := service.NewServer(service.Config{CacheSize: 16})
	ctx := context.Background()

	// A fixed structure (the paper's supported-model premise) with two
	// different value sets — think "same graph, new edge weights".
	r := ring.Counting{}
	inst := workload.Blocks(64, 4)
	a1 := matrix.Random(inst.Ahat, r, 1)
	b1 := matrix.Random(inst.Bhat, r, 2)
	a2 := matrix.Random(inst.Ahat, r, 3)
	b2 := matrix.Random(inst.Bhat, r, 4)
	opts := core.Options{Ring: r}

	// Optionally warm the cache from the structure alone (no values yet).
	prep, err := srv.Prepare(ctx, &service.PrepareRequest{
		Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat, Options: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared  band %v, classes [%v:%v:%v], fingerprint %s…\n",
		prep.Band, prep.Classes[0], prep.Classes[1], prep.Classes[2], prep.Fingerprint[:12])

	for i, vals := range []struct{ a, b *matrix.Sparse }{{a1, b1}, {a2, b2}} {
		resp, err := srv.Multiply(ctx, &service.MultiplyRequest{
			A: vals.a, B: vals.b, Xhat: inst.Xhat, Options: opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d: cache %-4s  %d rounds, %d messages, output nnz %d\n",
			i+1, cacheWord(resp.CacheHit), resp.Report.Rounds,
			resp.Report.Stats.Messages, resp.X.NNZ())
	}

	fmt.Println("\nservice counters:")
	metrics := srv.Metrics()
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-22s %d\n", name, metrics[name])
	}
}

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
