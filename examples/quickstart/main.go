// Quickstart: multiply two sparse matrices in the supported low-bandwidth
// model and inspect what the simulation measured.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

func main() {
	// An 8×8 instance over the counting semiring. A is a cycle shift, B a
	// small band; we ask for the diagonal band of X = A·B.
	const n = 8
	r := ring.Counting{}

	a := matrix.NewSparse(n, r)
	b := matrix.NewSparse(n, r)
	for i := 0; i < n; i++ {
		a.Set(i, (i+1)%n, ring.Value(i+1)) // one entry per row: US(1)
		b.Set(i, i, 2)                     // diagonal
		b.Set(i, (i+2)%n, 3)               // second diagonal: US(2)
	}

	// The output support X̂ — which entries of the product we care about.
	// In the supported model this structure is known to all computers in
	// advance; only the numeric values travel at run time.
	var want [][2]int
	for i := 0; i < n; i++ {
		want = append(want, [2]int{i, (i + 1) % n}, [2]int{i, (i + 3) % n})
	}
	xhat := matrix.NewSupport(n, want)

	x, report, err := core.Multiply(a, b, xhat, core.Options{Ring: r})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("X = A·B restricted to X̂:")
	fmt.Print(x)
	fmt.Printf("\nsimulated %d computers, ring %s\n", n, r.Name())
	fmt.Printf("classes [%v:%v:%v], band %v\n",
		report.Classes[0], report.Classes[1], report.Classes[2], report.Band)
	fmt.Printf("algorithm %q finished in %d communication rounds, %d messages\n",
		report.Name, report.Rounds, report.Stats.Messages)
	fmt.Printf("max per-computer load: %d sent, %d received, %d values stored\n",
		report.Stats.MaxSendLoad(), report.Stats.MaxRecvLoad(), report.Stats.PeakStore)
}
