// Profile: multiply a skewed power-law workload with the observability
// layer attached, export the machine-readable trace (schema lbmm.trace.v1,
// see docs/OBSERVABILITY.md) to a JSON file, and print the per-phase round
// breakdown.
//
//	go run ./examples/profile
package main

import (
	"fmt"
	"log"
	"os"

	"lbmm/internal/algo"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func main() {
	// A power-law instance: a few hot rows carry most of the entries, the
	// tail thins out as 1/rank. Skew is exactly what the per-node load
	// vectors and phase spans are built to expose.
	const n, d = 64, 4
	inst := workload.PowerLaw(n, d, 42)
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)

	// lbm.WithTrace attaches the obsv.Profile collector; the returned
	// Result then carries the structured profile alongside the round count.
	res, got, err := algo.Solve(r, inst, a, b,
		algo.Theorem42(algo.Theorem42Opts{}), lbm.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	if err := algo.Verify(got, a, b, inst.Xhat); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n", res.Name, workload.Describe(inst))
	fmt.Printf("total %d rounds (phase1 %d, phase2 %d), %d messages\n\n",
		res.Rounds, res.Phase1Rounds, res.Phase2Rounds, res.Stats.Messages)

	// Per-phase breakdown: rounds, messages, and a message-volume sparkline
	// for every span the builders annotated.
	fmt.Print(res.Profile.Summary())

	// Machine-readable export for external tooling.
	e := res.Profile.Export()
	e.Meta = map[string]string{
		"algorithm": res.Name,
		"workload":  "powerlaw",
		"instance":  workload.Describe(inst),
	}
	const out = "profile_trace.json"
	fh, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer fh.Close()
	if err := e.WriteJSON(fh); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace written to %s (schema %s)\n", out, e.Schema)
	fmt.Printf("peak per-computer load: %d sent, %d received\n",
		e.MaxSendLoad, e.MaxRecvLoad)
}
