// Lower-bound playground: runs the §6 hard instances and prints the proven
// bounds next to what the library's algorithms actually pay, including the
// executable Theorem 6.19 packing reduction and the Boolean-degree
// machinery of Lemma 6.5.
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"
	"math/bits"

	"lbmm/internal/exper"
	"lbmm/internal/lower"
)

func main() {
	rows, err := exper.LowerBounds(exper.Quick)
	if err != nil {
		log.Fatal(err)
	}
	if err := exper.CheckLowerRows(rows); err != nil {
		log.Fatal(err) // a violated lower bound would mean a broken model
	}
	fmt.Print(exper.FormatLowerBounds(rows))

	fmt.Println("\nmore Boolean degrees (Lemma 6.5 machinery):")
	funcs := []struct {
		name string
		f    func(uint32, int) bool
	}{
		{"OR", func(m uint32, n int) bool { return m != 0 }},
		{"AND", func(m uint32, n int) bool { return bits.OnesCount32(m) == n }},
		{"XOR", func(m uint32, n int) bool { return bits.OnesCount32(m)%2 == 1 }},
		{"MAJ", func(m uint32, n int) bool { return 2*bits.OnesCount32(m) > n }},
	}
	for _, fc := range funcs {
		n := 9
		deg := lower.BooleanDegree(func(m uint32) bool { return fc.f(m, n) }, n)
		fmt.Printf("  deg(%s_%d) = %d  ⇒  T ≥ %d rounds\n", fc.name, n, deg, lower.DegreeBound(deg))
	}

	fmt.Println("\nconditional bound of Theorem 6.19 (semiring λ=4/3):")
	for _, n := range []int{1 << 6, 1 << 12, 1 << 18} {
		fmt.Printf("  n=%-8d  Ω(n^(λ-1)/2) = Ω(n^1/6) ≈ %.1f rounds\n", n, lower.ConditionalBound(n, 4.0/3.0))
	}
}
