// Batch: drive the dynamic batching subsystem — 64 concurrent multiplies
// over one shared sparsity structure against a batching server. The
// coalescer groups the in-flight requests by plan fingerprint and executes
// each group as a single lane-strided pass over the compiled plan: one
// instruction-stream walk carries every lane, so the batch costs the
// rounds (and most of the host time) of ONE multiply. The batch metrics
// afterwards show how the 64 requests coalesced.
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/workload"
)

func main() {
	const k = 64
	srv := service.NewServer(service.Config{
		CacheSize:  16,
		BatchSize:  16, // up to 16 lanes per batched run
		BatchDelay: 2 * time.Millisecond,
	})
	defer srv.Close()
	ctx := context.Background()

	// One structure, many value sets — the supported model's premise, and
	// exactly the traffic shape batching exploits: every request below
	// resolves to the same plan fingerprint.
	r := ring.Counting{}
	inst := workload.Blocks(64, 4)
	opts := core.Options{Ring: r}
	if _, err := srv.Prepare(ctx, &service.PrepareRequest{
		Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat, Options: opts,
	}); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	rounds := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := matrix.Random(inst.Ahat, r, int64(2*i+1))
			b := matrix.Random(inst.Bhat, r, int64(2*i+2))
			resp, err := srv.Multiply(ctx, &service.MultiplyRequest{
				A: a, B: b, Xhat: inst.Xhat, Options: opts,
			})
			if err != nil {
				errs[i] = err
				return
			}
			rounds[i] = resp.Report.Rounds
			if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(resp.X, want) {
				errs[i] = fmt.Errorf("request %d: wrong product", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d concurrent multiplies over one structure, all verified; every one cost %d rounds\n", k, rounds[0])

	m := srv.Metrics()
	batches := m["batch/size/count"]
	lanes := m["batch/size/sum"]
	fmt.Printf("coalesced into %d batched runs (%.1f lanes/batch on average)\n",
		batches, float64(lanes)/float64(batches))
	fmt.Println("\nbatch counters:")
	names := make([]string, 0, len(m))
	for name := range m {
		if strings.HasPrefix(name, "batch/") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-22s %d\n", name, m[name])
	}
}
