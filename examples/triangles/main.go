// Triangle counting in a bounded-degree graph — the paper's motivating
// application (§1.5): counting reduces to [US:US:US] sparse matrix
// multiplication over the counting semiring, which the library solves with
// the Theorem 4.2 two-phase algorithm.
//
//	go run ./examples/triangles
package main

import (
	"fmt"
	"log"

	"lbmm/internal/core"
	"lbmm/internal/triangle"
)

func main() {
	graphs := []struct {
		name string
		g    *triangle.Graph
	}{
		{"random bounded-degree", triangle.RandomBoundedDegree(128, 6, 7)},
		{"small world (WS)", triangle.SmallWorld(128, 6, 0.1, 7)},
		{"preferential attachment (BA)", triangle.PreferentialAttachment(128, 3, 7)},
	}
	for _, entry := range graphs {
		g := entry.g
		fmt.Printf("— %s —\n", entry.name)

		res, err := triangle.Count(g, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		local := triangle.CountLocal(g)
		status := "OK"
		if res.Triangles != local {
			status = "MISMATCH"
		}

		found, _, err := triangle.Detect(g, core.Options{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("graph n=%d maxdeg=%d edges=%d\n", g.N, g.MaxDegree(), g.NumEdges())
		fmt.Printf("  distributed count: %d (reference %d, %s)\n", res.Triangles, local, status)
		fmt.Printf("  boolean detection: %v\n", found)
		fmt.Printf("  class band %v, algorithm %s, %d rounds on %d simulated computers\n",
			res.Report.Band, res.Report.Name, res.Report.Rounds, g.N)
		if res.Report.Name == "theorem42" {
			fmt.Printf("  phase 1 (clustered dense batches): %d rounds over %d batches\n",
				res.Report.Phase1Rounds, res.Report.Batches)
			fmt.Printf("  phase 2 (Lemma 3.1, κ=%d): %d rounds\n", res.Report.Kappa, res.Report.Phase2Rounds)
		} else {
			fmt.Printf("  Lemma 3.1 budget κ=%d\n", res.Report.Kappa)
		}
		fmt.Println()
	}
}
