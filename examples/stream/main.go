// Stream: drive the lbmm.stream.v1 session layer — pipeline 128 multiplies
// over ONE connection against the adaptive batch controller. Each submit
// frame is ticketed immediately and its result arrives asynchronously, so
// the client never holds more than one socket (and the server never parks a
// goroutine per lane). The controller watches the arrival rate per plan
// fingerprint: the first lane is cold and launches immediately, the rest
// are recognized as a hot stream and coalesced toward the batch sweet spot.
// The counters afterwards show the session, controller, and batch story.
//
//	go run ./examples/stream
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/stream"
	"lbmm/internal/workload"
)

func main() {
	const lanes = 128
	ms := obsv.NewCounterSet()
	srv := service.NewServer(service.Config{
		BatchAdaptive: true, // per-fingerprint window, not a static delay
		BatchSize:     16,
		BatchDelay:    25 * time.Millisecond,
		Metrics:       ms,
	})
	defer srv.Close()

	// The session endpoint rides beside the scalar API, exactly as
	// `lbmm serve -stream -batch-adaptive` mounts them.
	mux := http.NewServeMux()
	mux.Handle("/stream/", stream.NewHandler(srv, stream.Config{Metrics: ms}))
	mux.Handle("/", service.NewHandler(srv))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := ring.Counting{}
	inst := workload.Blocks(48, 4)
	xhat := inst.Xhat.Entries()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c, err := stream.Dial(ctx, ts.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("session open (proto %s, inflight cap %d)\n", stream.Proto, c.MaxInflight())

	// Pipeline every lane without waiting for outcomes; the identical xhat
	// is shipped once and elided as same_xhat on every later submit.
	as := make([]*matrix.Sparse, lanes)
	bs := make([]*matrix.Sparse, lanes)
	calls := make([]*stream.Call, lanes)
	for i := 0; i < lanes; i++ {
		as[i] = matrix.Random(inst.Ahat, r, int64(2*i+1))
		bs[i] = matrix.Random(inst.Bhat, r, int64(2*i+2))
		calls[i], err = c.Submit(fmt.Sprintf("lane-%d", i), &service.WireMultiply{
			N: inst.Ahat.N, Ring: "counting",
			A: service.WireEntries(as[i]), B: service.WireEntries(bs[i]), Xhat: xhat,
		})
		if err != nil {
			log.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, call := range calls {
		f, err := call.Wait(ctx)
		if err != nil || f.Type != stream.TypeResult {
			log.Fatalf("lane %d: %v / %s %s", i, err, f.Type, f.Error)
		}
		got := matrix.NewSparse(inst.Ahat.N, r)
		for _, e := range f.X {
			got.Set(int(e[0]), int(e[1]), e[2])
		}
		if !matrix.Equal(got, matrix.MulReference(as[i], bs[i], inst.Xhat)) {
			log.Fatalf("lane %d: wrong product", i)
		}
	}
	fmt.Printf("%d lanes pipelined over one connection, all verified\n", lanes)

	m := srv.Metrics()
	fmt.Printf("coalesced into %d batched runs (%.1f lanes/batch on average)\n",
		m["batch/size/count"], float64(m["batch/size/sum"])/float64(m["batch/size/count"]))
	fmt.Println("\nsession counters:")
	names := make([]string, 0, len(m))
	for name := range m {
		if strings.HasPrefix(name, "stream/") || strings.HasPrefix(name, "control/") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-24s %d\n", name, m[name])
	}
}
